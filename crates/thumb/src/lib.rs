#![warn(missing_docs)]

//! A Thumb/MIPS16-style *static ISA subsetting* baseline (§2.2 of the
//! reproduced paper).
//!
//! Thumb and MIPS16 shrink programs by re-encoding a fixed, statically
//! chosen subset of the base ISA into 16-bit instructions, at the cost of
//! reaching only 8 registers and reduced immediate ranges, with mode
//! switches between 16- and 32-bit code. The paper contrasts its
//! program-specific dictionary against this program-independent subsetting
//! ("we derive our codewords and dictionary from the specific
//! characteristics of the program under execution") and reports Thumb ≈ 30 %
//! / MIPS16 ≈ 40 % smaller code.
//!
//! This crate models that approach for the PowerPC subset with a per-
//! instruction *cost function* ([`thumb_cost_bytes`]):
//!
//! * **2 bytes** — the instruction's shape fits a Thumb-1-like 16-bit form
//!   (2-address or 3-address-with-imm3 ALU, 8-bit move/compare immediates,
//!   5-bit scaled load/store offsets or SP-relative imm8, short branches,
//!   `push`/`pop` multiple, hi-reg moves for LR/CTR);
//! * **4 bytes** — directly expressible as a 32-bit pair (`bl`, long `b`);
//! * **expansion** — everything else (wide immediates, general rotates,
//!   divides, wide compares): materialized with several 16-bit
//!   instructions, at [`ThumbModel::expansion_bytes`] each.
//!
//! Register *numbers* are ignored (a Thumb compiler allocates into the low
//! registers); instead each function whose body touches more than 8 GPRs
//! pays [`ThumbModel::pressure_bytes`] per extra register, approximating
//! the spill traffic the 8-register limit induces ("this confines Thumb and
//! MIPS16 programs to 8 registers of the base architecture"). The model is
//! deliberately *generous* to Thumb — an upper bound on what static
//! subsetting achieves here — which only strengthens the comparison when
//! the dictionary still wins.

use std::collections::HashSet;

use codense_obj::ObjectModule;
use codense_ppc::{decode, Insn};

/// Cost parameters of the 16-bit mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThumbModel {
    /// Bytes a non-re-encodable instruction costs inside a 16-bit-mode
    /// function (expansion into several 16-bit instructions / literal-pool
    /// loads). Thumb practice averages ~3 halfwords.
    pub expansion_bytes: u32,
    /// Per-function mode-switch veneer bytes (`bx`-style trampoline).
    pub veneer_bytes: u32,
    /// Spill-traffic bytes charged per distinct GPR beyond 8 used by a
    /// 16-bit-mode function.
    pub pressure_bytes: u32,
}

impl Default for ThumbModel {
    fn default() -> ThumbModel {
        ThumbModel { expansion_bytes: 6, veneer_bytes: 4, pressure_bytes: 8 }
    }
}

/// Result of the per-function mode assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThumbReport {
    /// Total instructions analyzed.
    pub insns: usize,
    /// Instructions whose shape fits a 16-bit form.
    pub narrow: usize,
    /// Instructions expressible as a direct 32-bit pair (`bl`, long `b`).
    pub paired: usize,
    /// Functions compiled in 16-bit mode.
    pub thumb_functions: usize,
    /// Functions kept in 32-bit mode.
    pub arm_functions: usize,
    /// Modeled program size in bytes.
    pub size_bytes: usize,
    /// Original program size in bytes.
    pub original_bytes: usize,
}

impl ThumbReport {
    /// Modeled compression ratio (size/original).
    pub fn compression_ratio(&self) -> f64 {
        self.size_bytes as f64 / self.original_bytes as f64
    }

    /// Fraction of instructions with a 16-bit form.
    pub fn coverage(&self) -> f64 {
        self.narrow as f64 / self.insns as f64
    }
}

/// Bytes this instruction costs in 16-bit mode under `model` (register
/// numbers ignored; see the crate docs for the renaming assumption).
pub fn thumb_cost_bytes(insn: &Insn, model: ThumbModel) -> u32 {
    use Insn::*;
    let narrow = 2;
    let pair = 4;
    let wide = model.expansion_bytes;
    match *insn {
        // Moves/ALU immediates: mov/add/sub imm8, add 3-address imm3.
        Addi { rt, ra, si } => {
            let mov_imm8 = ra.number() == 0 && (0..256).contains(&si);
            let add_sub_imm8 = rt == ra && (-255..256).contains(&si);
            let add_imm3 = (-7..8).contains(&si);
            if mov_imm8 || add_sub_imm8 || add_imm3 {
                narrow
            } else {
                wide
            }
        }
        Addis { .. } | Oris { .. } | Xoris { .. } | AndisRc { .. } => wide,
        Mulli { .. } => wide,
        Addic { .. } | AddicRc { .. } | Subfic { .. } => wide,

        Cmpwi { si, .. } => {
            if (0..256).contains(&si) {
                narrow
            } else {
                wide
            }
        }
        Cmplwi { ui, .. } => {
            if ui < 256 {
                narrow
            } else {
                wide
            }
        }
        Cmpw { .. } | Cmplw { .. } => narrow,

        // Register ALU: Thumb ADD/SUB are 3-address; the rest 2-address.
        Add { .. } | Subf { .. } | Neg { .. } => narrow,
        Mullw { rt, ra, rb, .. } => {
            if rt == ra || rt == rb {
                narrow
            } else {
                wide
            }
        }
        And { ra, rs, rb, .. } | Xor { ra, rs, rb, .. } | Andc { ra, rs, rb, .. } => {
            if ra == rs || ra == rb {
                narrow
            } else {
                wide
            }
        }
        Or { ra, rs, rb, .. } => {
            if rs == rb || ra == rs || ra == rb {
                narrow
            } else {
                wide
            } // mr or 2-address orr
        }
        Nor { rs, rb, .. } => {
            if rs == rb {
                narrow
            } else {
                wide
            }
        } // mvn
        Nand { .. } | Orc { .. } => wide,
        // D-form logical immediates: 8-bit values fit and-/orr-/eor-with-
        // mov-imm8 pairs poorly; only tiny masks stay narrow via lsls/lsrs.
        Ori { rs, ra, ui } => {
            // nop (ui == 0) and orr-imm8 both stay narrow.
            if ui < 256 && rs == ra {
                narrow
            } else {
                wide
            }
        }
        Xori { rs, ra, ui } | AndiRc { rs, ra, ui } => {
            if ui < 256 && rs == ra {
                narrow
            } else {
                wide
            }
        }
        Slw { .. } | Srw { .. } | Sraw { .. } | Srawi { .. } => narrow,
        Extsb { .. } | Extsh { .. } => wide, // no sxtb/sxth in Thumb-1
        Cntlzw { .. } => wide,
        Mulhw { .. } | Divw { .. } | Divwu { .. } => wide, // runtime helpers

        // Rotates: only the plain shift idioms have Thumb forms.
        Rlwinm { sh, mb, me, .. } => {
            if (mb == 0 && me == 31 - sh) || (me == 31 && mb == 32 - sh) || (sh == 0 && me == 31) {
                narrow // lsl / lsr / 8-bit mask via lsls+lsrs counts once
            } else {
                wide
            }
        }
        Rlwimi { .. } => wide,

        // Loads/stores: SP-relative word imm8*4, otherwise imm5 scaled;
        // indexed forms exist.
        Lwz { ra, d, .. } | Stw { ra, d, .. } => {
            // SP-relative imm8*4, or general-base imm5*4.
            let in_range =
                if ra.number() == 1 { (0..1024).contains(&d) } else { (0..128).contains(&d) };
            if in_range && d % 4 == 0 {
                narrow
            } else {
                wide
            }
        }
        Lbz { d, .. } | Stb { d, .. } => {
            if (0..32).contains(&d) {
                narrow
            } else {
                wide
            }
        }
        Lhz { d, .. } | Sth { d, .. } => {
            if (0..64).contains(&d) && d % 2 == 0 {
                narrow
            } else {
                wide
            }
        }
        Lha { .. } => wide,
        Lwzu { .. }
        | Lbzu { .. }
        | Lhzu { .. }
        | Lhau { .. }
        | Stwu { .. }
        | Stbu { .. }
        | Sthu { .. } => wide,
        Lwzx { .. } | Lbzx { .. } | Lhzx { .. } | Stwx { .. } | Stbx { .. } | Sthx { .. } => narrow,
        Lmw { .. } | Stmw { .. } => narrow, // push/pop register list

        // Branches.
        B { li, aa: false, lk: false } => {
            if (-2048..2048).contains(&li) {
                narrow
            } else {
                pair
            }
        }
        B { lk: true, .. } => pair, // Thumb BL is two halfwords
        B { .. } => pair,
        Bc { bd, aa: false, lk: false, .. } => {
            if (-256..256).contains(&bd) {
                narrow
            } else {
                wide
            }
        }
        Bc { .. } => wide,
        Bclr { .. } => narrow,                 // bx lr
        Bcctr { .. } => narrow,                // bx/mov pc, reg
        Mfspr { .. } | Mtspr { .. } => narrow, // hi-register mov
        Mfcr { .. } | Mtcrf { .. } | Crxor { .. } => wide,
        Twi { .. } => wide,
        Sc => narrow, // swi
        Illegal(_) => wide,
    }
}

/// Is this instruction's 16-bit cost the narrow 2 bytes?
pub fn reencodable(insn: &Insn) -> bool {
    thumb_cost_bytes(insn, ThumbModel::default()) == 2
}

/// Analyzes a module under the default cost model.
pub fn analyze(module: &ObjectModule) -> ThumbReport {
    analyze_with(module, ThumbModel::default())
}

/// Analyzes a module, choosing per function between 32-bit mode and 16-bit
/// mode. Text outside any function is charged at 32 bits per instruction.
pub fn analyze_with(module: &ObjectModule, model: ThumbModel) -> ThumbReport {
    let mut report = ThumbReport {
        insns: module.len(),
        narrow: 0,
        paired: 0,
        thumb_functions: 0,
        arm_functions: 0,
        size_bytes: 0,
        original_bytes: module.text_bytes(),
    };
    let mut covered = vec![false; module.len()];
    for func in &module.functions {
        let mut thumb_cost = model.veneer_bytes as usize;
        let mut regs: HashSet<u8> = HashSet::new();
        for (flag, &word) in
            covered[func.start..func.end].iter_mut().zip(&module.code[func.start..func.end])
        {
            *flag = true;
            let insn = decode(word);
            let cost = thumb_cost_bytes(&insn, model);
            match cost {
                2 => report.narrow += 1,
                4 => report.paired += 1,
                _ => {}
            }
            thumb_cost += cost as usize;
            track_regs(&insn, &mut regs);
        }
        // 8-register pressure penalty.
        let pressure = regs.len().saturating_sub(8);
        thumb_cost += pressure * model.pressure_bytes as usize;

        let arm_cost = 4 * func.len();
        if thumb_cost < arm_cost {
            report.thumb_functions += 1;
            report.size_bytes += thumb_cost;
        } else {
            report.arm_functions += 1;
            report.size_bytes += arm_cost;
        }
    }
    report.size_bytes += 4 * covered.iter().filter(|&&c| !c).count();
    report
}

/// Records the GPRs an instruction names (r0/r1 excluded: zero/SP).
fn track_regs(insn: &Insn, regs: &mut HashSet<u8>) {
    use Insn::*;
    let mut push = |r: codense_ppc::Gpr| {
        if r.number() > 1 {
            regs.insert(r.number());
        }
    };
    match *insn {
        Addi { rt, ra, .. }
        | Addis { rt, ra, .. }
        | Addic { rt, ra, .. }
        | AddicRc { rt, ra, .. }
        | Subfic { rt, ra, .. }
        | Mulli { rt, ra, .. }
        | Lwz { rt, ra, .. }
        | Lwzu { rt, ra, .. }
        | Lbz { rt, ra, .. }
        | Lbzu { rt, ra, .. }
        | Lhz { rt, ra, .. }
        | Lhzu { rt, ra, .. }
        | Lha { rt, ra, .. }
        | Lhau { rt, ra, .. }
        | Lmw { rt, ra, .. } => {
            push(rt);
            push(ra);
        }
        Ori { ra, rs, .. }
        | Oris { ra, rs, .. }
        | Xori { ra, rs, .. }
        | Xoris { ra, rs, .. }
        | AndiRc { ra, rs, .. }
        | AndisRc { ra, rs, .. }
        | Srawi { ra, rs, .. }
        | Extsb { ra, rs, .. }
        | Extsh { ra, rs, .. }
        | Cntlzw { ra, rs, .. }
        | Rlwinm { ra, rs, .. }
        | Rlwimi { ra, rs, .. } => {
            push(ra);
            push(rs);
        }
        Stw { rs, ra, .. }
        | Stwu { rs, ra, .. }
        | Stb { rs, ra, .. }
        | Stbu { rs, ra, .. }
        | Sth { rs, ra, .. }
        | Sthu { rs, ra, .. }
        | Stmw { rs, ra, .. } => {
            push(rs);
            push(ra);
        }
        Add { rt, ra, rb, .. }
        | Subf { rt, ra, rb, .. }
        | Mullw { rt, ra, rb, .. }
        | Mulhw { rt, ra, rb, .. }
        | Divw { rt, ra, rb, .. }
        | Divwu { rt, ra, rb, .. }
        | Lwzx { rt, ra, rb }
        | Lbzx { rt, ra, rb }
        | Lhzx { rt, ra, rb } => {
            push(rt);
            push(ra);
            push(rb);
        }
        And { ra, rs, rb, .. }
        | Or { ra, rs, rb, .. }
        | Xor { ra, rs, rb, .. }
        | Nand { ra, rs, rb, .. }
        | Nor { ra, rs, rb, .. }
        | Andc { ra, rs, rb, .. }
        | Orc { ra, rs, rb, .. }
        | Slw { ra, rs, rb, .. }
        | Srw { ra, rs, rb, .. }
        | Sraw { ra, rs, rb, .. } => {
            push(ra);
            push(rs);
            push(rb);
        }
        Stwx { rs, ra, rb } | Stbx { rs, ra, rb } | Sthx { rs, ra, rb } => {
            push(rs);
            push(ra);
            push(rb);
        }
        Neg { rt, ra, .. } => {
            push(rt);
            push(ra);
        }
        Cmpwi { ra, .. } | Cmplwi { ra, .. } | Twi { ra, .. } => push(ra),
        Cmpw { ra, rb, .. } | Cmplw { ra, rb, .. } => {
            push(ra);
            push(rb);
        }
        Mfspr { rt, .. } => push(rt),
        Mtspr { rs, .. } => push(rs),
        Mfcr { rt } => push(rt),
        Mtcrf { rs, .. } => push(rs),
        B { .. } | Bc { .. } | Bclr { .. } | Bcctr { .. } | Crxor { .. } | Sc | Illegal(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_ppc::encode;
    use codense_ppc::insn::bo;
    use codense_ppc::reg::*;

    fn cost(insn: &Insn) -> u32 {
        thumb_cost_bytes(insn, ThumbModel::default())
    }

    #[test]
    fn alu_shapes() {
        assert_eq!(cost(&Insn::Add { rt: R9, ra: R11, rb: R4, rc: false }), 2);
        assert_eq!(cost(&Insn::Mullw { rt: R9, ra: R9, rb: R4, rc: false }), 2);
        assert_eq!(cost(&Insn::Mullw { rt: R9, ra: R10, rb: R4, rc: false }), 6);
        assert_eq!(cost(&Insn::Divw { rt: R3, ra: R3, rb: R4, rc: false }), 6);
    }

    #[test]
    fn immediate_ranges() {
        assert_eq!(cost(&Insn::Addi { rt: R3, ra: R0, si: 255 }), 2);
        assert_eq!(cost(&Insn::Addi { rt: R3, ra: R3, si: -200 }), 2);
        assert_eq!(cost(&Insn::Addi { rt: R3, ra: R4, si: 5 }), 2);
        assert_eq!(cost(&Insn::Addi { rt: R3, ra: R4, si: 100 }), 6);
        assert_eq!(cost(&Insn::Addis { rt: R9, ra: R0, si: 64 }), 6);
    }

    #[test]
    fn memory_offsets() {
        assert_eq!(cost(&Insn::Lwz { rt: R9, ra: R1, d: 512 }), 2, "sp-relative imm8*4");
        assert_eq!(cost(&Insn::Lwz { rt: R9, ra: R30, d: 64 }), 2, "imm5*4");
        assert_eq!(cost(&Insn::Lwz { rt: R9, ra: R30, d: 256 }), 6);
        assert_eq!(cost(&Insn::Lbz { rt: R9, ra: R30, d: 40 }), 6);
        assert_eq!(cost(&Insn::Stwu { rs: R1, ra: R1, d: -32 }), 6, "writeback form");
    }

    #[test]
    fn branches() {
        assert_eq!(cost(&Insn::B { li: 1000, aa: false, lk: false }), 2);
        assert_eq!(cost(&Insn::B { li: 100_000, aa: false, lk: false }), 4);
        assert_eq!(cost(&Insn::B { li: 64, aa: false, lk: true }), 4, "bl pair");
        assert_eq!(cost(&Insn::Bc { bo: bo::IF_TRUE, bi: 0, bd: 128, aa: false, lk: false }), 2);
        assert_eq!(cost(&Insn::Bclr { bo: bo::ALWAYS, bi: 0, lk: false }), 2);
    }

    #[test]
    fn pressure_penalty_applies() {
        let mut m = ObjectModule::new("t");
        // 12 distinct registers named: 4 over the Thumb limit.
        for r in 3..15u8 {
            let reg = Gpr::new(r).unwrap();
            m.code.push(encode(&Insn::Addi { rt: reg, ra: reg, si: 1 }));
        }
        m.functions.push(codense_obj::FunctionInfo {
            name: "f".into(),
            start: 0,
            end: 12,
            prologue_len: 0,
            epilogues: vec![],
        });
        let loose = analyze_with(&m, ThumbModel { pressure_bytes: 0, ..Default::default() });
        let tight = analyze_with(&m, ThumbModel::default());
        // Without the penalty the function profits from 16-bit mode
        // (4 + 12*2 = 28 bytes); with 4 over-limit registers at 8 bytes the
        // 16-bit cost (60) exceeds ARM (48), so it stays 32-bit.
        assert_eq!(loose.thumb_functions, 1);
        assert_eq!(loose.size_bytes, 28);
        assert_eq!(tight.arm_functions, 1);
        assert_eq!(tight.size_bytes, 48);
    }

    #[test]
    fn mode_choice_prefers_thumb_when_coverage_high() {
        let mut m = ObjectModule::new("t");
        m.code = vec![encode(&Insn::Addi { rt: R3, ra: R3, si: 1 }); 20];
        m.functions.push(codense_obj::FunctionInfo {
            name: "f".into(),
            start: 0,
            end: 20,
            prologue_len: 0,
            epilogues: vec![],
        });
        let r = analyze(&m);
        assert_eq!(r.thumb_functions, 1);
        assert_eq!(r.size_bytes, 2 * 20 + 4);
        assert!(r.compression_ratio() < 0.6);
    }

    #[test]
    fn mode_choice_keeps_arm_when_coverage_low() {
        let mut m = ObjectModule::new("t");
        m.code = vec![encode(&Insn::Divw { rt: R3, ra: R4, rb: R5, rc: false }); 20];
        m.functions.push(codense_obj::FunctionInfo {
            name: "f".into(),
            start: 0,
            end: 20,
            prologue_len: 0,
            epilogues: vec![],
        });
        let r = analyze(&m);
        assert_eq!(r.arm_functions, 1);
        assert_eq!(r.size_bytes, 80);
    }

    #[test]
    fn benchmark_lands_near_paper_band() {
        // Thumb reports ~30% reduction on real code; the model should land
        // in a broadly similar band on the stand-ins (0.6..0.9 ratio).
        let m = codense_codegen::benchmark("compress").unwrap();
        let r = analyze(&m);
        assert!(r.coverage() > 0.35, "coverage {:.2}", r.coverage());
        assert!(
            (0.55..0.95).contains(&r.compression_ratio()),
            "ratio {:.2}",
            r.compression_ratio()
        );
    }

    #[test]
    fn orphan_text_counted_at_full_width() {
        let mut m = ObjectModule::new("t");
        m.code = vec![encode(&Insn::Sc); 4];
        let r = analyze(&m);
        assert_eq!(r.size_bytes, 16);
    }
}
