//! Edge-case geometries for the I-cache model: direct-mapped caches,
//! fully-associative caches, minimal line sizes, and explicit LRU
//! eviction-order checks that pin the replacement policy (not just the
//! hit/miss totals).

use codense_cache::{Cache, CacheConfig};

/// Line addresses for `n` distinct lines under `line` bytes.
fn lines(line: u64, n: u64) -> Vec<u64> {
    (0..n).map(|i| i * line).collect()
}

#[test]
fn direct_mapped_single_set_thrashes() {
    // 1 set, 1 way: every distinct line conflicts with every other.
    let mut c = Cache::new(CacheConfig { size_bytes: 16, line_bytes: 16, ways: 1 });
    assert_eq!(c.config().sets(), 1);
    assert!(!c.access(0));
    assert!(c.access(8), "same line hits");
    assert!(!c.access(16), "any other line evicts");
    assert!(!c.access(0), "and the original is gone");
    assert_eq!(c.stats().misses, 3);
}

#[test]
fn direct_mapped_distinct_sets_coexist() {
    // 4 sets, 1 way: lines mapping to different sets never conflict.
    let mut c = Cache::new(CacheConfig { size_bytes: 64, line_bytes: 16, ways: 1 });
    assert_eq!(c.config().sets(), 4);
    for addr in lines(16, 4) {
        assert!(!c.access(addr), "cold miss at {addr}");
    }
    for addr in lines(16, 4) {
        assert!(c.access(addr), "resident at {addr}");
    }
    assert_eq!(c.stats().misses, 4);
}

#[test]
fn fully_associative_has_one_set() {
    // ways == size/line: a single set holding every line.
    let mut c = Cache::new(CacheConfig { size_bytes: 64, line_bytes: 16, ways: 4 });
    assert_eq!(c.config().sets(), 1);
    // Addresses that would all collide in a direct-mapped cache of the same
    // size coexist here regardless of their set bits.
    for i in 0..4u64 {
        assert!(!c.access(i * 64));
    }
    for i in 0..4u64 {
        assert!(c.access(i * 64), "line {i} resident");
    }
    assert_eq!(c.stats().misses, 4);
}

#[test]
fn fully_associative_lru_eviction_order() {
    let mut c = Cache::new(CacheConfig { size_bytes: 64, line_bytes: 16, ways: 4 });
    // Fill: A B C D (LRU order A, B, C, D).
    for addr in [0u64, 16, 32, 48] {
        c.access(addr);
    }
    // Touch A and C: LRU order becomes B, D, A, C.
    c.access(0);
    c.access(32);
    // Each new line must evict exactly the current LRU victim.
    assert!(!c.access(64), "new line E (evicts B, the LRU)");
    assert!(c.access(48), "D survived E's fill");
    assert!(c.access(0), "A survived E's fill");
    assert!(!c.access(16), "B was E's victim (reload evicts C)");
    assert!(!c.access(32), "C was the reload's victim");
    assert!(c.access(48), "D still resident after both evictions");
}

#[test]
fn minimal_line_config() {
    // Smallest legal geometry in every dimension: 1-byte lines, 1 way.
    let mut c = Cache::new(CacheConfig { size_bytes: 4, line_bytes: 1, ways: 1 });
    assert_eq!(c.config().sets(), 4);
    assert!(!c.access(0));
    assert!(c.access(0), "byte-granular hit");
    assert!(!c.access(4), "same set (addr mod 4), new tag");
    assert!(!c.access(0), "evicted by the conflict");
    assert_eq!(c.stats(), codense_cache::CacheStats { accesses: 4, misses: 3 });
}

#[test]
fn minimal_line_range_access_is_per_byte() {
    let mut c = Cache::new(CacheConfig { size_bytes: 8, line_bytes: 1, ways: 1 });
    c.access_range(0, 5);
    assert_eq!(c.stats().accesses, 5, "one access per byte line");
    assert_eq!(c.stats().misses, 5);
    c.access_range(0, 5);
    assert_eq!(c.stats().misses, 5, "second pass all hits");
}

#[test]
fn set_associative_lru_is_per_set() {
    // 2 sets x 2 ways; evictions in one set must not disturb the other.
    let mut c = Cache::new(CacheConfig { size_bytes: 64, line_bytes: 16, ways: 2 });
    assert_eq!(c.config().sets(), 2);
    // Set 0 lines: 0, 64, 128...; set 1 lines: 16, 80, ...
    c.access(0);
    c.access(16);
    c.access(64);
    // Set 0 now holds {0, 64}; pushing 128 evicts 0 (LRU of set 0).
    assert!(!c.access(128));
    assert!(!c.access(0), "0 evicted from set 0");
    assert!(c.access(16), "set 1 untouched by set 0 traffic");
}

#[test]
fn eviction_count_matches_capacity_overflow() {
    let mut c = Cache::new(CacheConfig { size_bytes: 32, line_bytes: 16, ways: 2 });
    // 6 distinct lines through a 2-line cache: every access misses
    // (the first two fills find empty ways; the rest evict).
    for addr in lines(16, 6) {
        assert!(!c.access(addr));
    }
    assert_eq!(c.stats().misses, 6);
}
