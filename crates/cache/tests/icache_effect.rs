//! The paper's §1 motivation, measured honestly: compression shrinks the
//! code working set *when there is redundancy to harvest*. The hand-written
//! kernels are small and mostly unique code, so per-kernel results vary
//! (escape nibbles can even grow a tiny program); the defensible claims are
//! aggregate ones, plus a strong per-program claim on the real benchmark
//! images whose redundancy the scheme targets.

use codense_cache::{replay, Cache, CacheConfig, FetchRef, TracingFetch};
use codense_core::{CompressionConfig, Compressor};
use codense_vm::{fetch::CompressedFetcher, kernels, machine::Machine, run::run, LinearFetcher};

fn miss_counts(kernel: &codense_vm::kernels::Kernel, config: CacheConfig) -> (u64, u64) {
    let mut machine = Machine::new(1 << 20);
    kernel.apply_init(&mut machine);
    let mut fetch = TracingFetch::new(LinearFetcher::new(kernel.module.code.clone()));
    let r1 = run(&mut machine, &mut fetch, 0, 10_000_000).expect("uncompressed run");
    let mut cache = Cache::new(config);
    fetch.replay(&mut cache);
    let plain = cache.stats().misses;

    let compressed = Compressor::new(CompressionConfig::nibble_aligned())
        .compress(&kernel.module)
        .expect("compress");
    let mut machine = Machine::new(1 << 20);
    kernel.apply_init(&mut machine);
    let mut fetch = TracingFetch::new(CompressedFetcher::new(&compressed));
    let r2 = run(&mut machine, &mut fetch, 0, 10_000_000).expect("compressed run");
    assert_eq!(r1.exit_code, r2.exit_code);
    let mut cache = Cache::new(config);
    fetch.replay(&mut cache);
    (plain, cache.stats().misses)
}

#[test]
fn aggregate_misses_shrink_at_realistic_sizes() {
    // At 128B+ caches the compressed kernels win in aggregate, and no
    // kernel degrades badly (a line or two of layout wobble at most).
    for size in [128usize, 256, 512] {
        let config = CacheConfig { size_bytes: size, line_bytes: 16, ways: 1 };
        let mut plain_total = 0u64;
        let mut compressed_total = 0u64;
        for kernel in kernels::all() {
            let (plain, compressed) = miss_counts(&kernel, config);
            assert!(
                compressed <= plain + 2,
                "{} @ {size}B: compressed {compressed} vs plain {plain}",
                kernel.name
            );
            plain_total += plain;
            compressed_total += compressed;
        }
        assert!(compressed_total < plain_total, "@ {size}B: {compressed_total} vs {plain_total}");
    }
}

#[test]
fn redundant_kernels_win_even_when_tiny_ones_lose() {
    // memcpy and sieve have repetitive bodies the dictionary harvests;
    // their compressed forms never touch more lines at these sizes.
    for kernel in [kernels::memcpy(), kernels::sieve()] {
        for size in [64usize, 128, 256] {
            let config = CacheConfig { size_bytes: size, line_bytes: 16, ways: 1 };
            let (plain, compressed) = miss_counts(&kernel, config);
            assert!(
                compressed <= plain,
                "{} @ {size}B: compressed {compressed} vs plain {plain}",
                kernel.name
            );
        }
    }
}

#[test]
fn benchmark_images_halve_their_cold_footprint() {
    // For the real benchmark images (where the paper's redundancy premise
    // holds), the cold-line footprint tracks the compression ratio: a
    // straight-line walk of the compressed image touches roughly half the
    // lines of the original.
    let module = codense_codegen::benchmark("compress").unwrap();
    let compressed =
        Compressor::new(CompressionConfig::nibble_aligned()).compress(&module).unwrap();

    let line = 16u64;
    let plain_lines = (module.text_bytes() as u64).div_ceil(line);
    let comp_lines = (compressed.text_bytes() as u64).div_ceil(line);
    let ratio = comp_lines as f64 / plain_lines as f64;
    assert!(
        (0.40..0.60).contains(&ratio),
        "cold footprint ratio {ratio:.2} should track the compression ratio"
    );
}

#[test]
fn trace_replay_is_deterministic() {
    let kernel = kernels::bubble_sort();
    let run_trace = || {
        let mut machine = Machine::new(1 << 20);
        kernel.apply_init(&mut machine);
        let mut fetch = TracingFetch::new(LinearFetcher::new(kernel.module.code.clone()));
        run(&mut machine, &mut fetch, 0, 10_000_000).unwrap();
        fetch.into_trace()
    };
    let a: Vec<FetchRef> = run_trace();
    let b: Vec<FetchRef> = run_trace();
    assert_eq!(a, b);
    let mut c1 = Cache::new(CacheConfig { size_bytes: 256, line_bytes: 16, ways: 2 });
    let mut c2 = Cache::new(CacheConfig { size_bytes: 256, line_bytes: 16, ways: 2 });
    replay(&a, &mut c1);
    replay(&b, &mut c2);
    assert_eq!(c1.stats(), c2.stats());
}
