#![warn(missing_docs)]

//! Instruction-cache simulation: the performance side of code compression.
//!
//! The reproduced paper motivates compression partly through the memory
//! system ("Reducing program size is one way to reduce instruction cache
//! misses and achieve higher performance", §1, citing [Chen97b]) and lists
//! performance exploration as future work (§5). This crate provides that
//! substrate: a set-associative I-cache model ([`Cache`]) plus a tracing
//! fetch adapter ([`TracingFetch`]) that records the program-memory
//! references a fetch engine actually makes, so compressed and uncompressed
//! executions of the same kernel can be compared miss-for-miss.
//!
//! A compressed program touches fewer distinct bytes for the same executed
//! instructions, so at equal cache size its miss count can only shrink —
//! measured, not assumed, by `codense-experiments`' `cache` exhibit.
//!
//! # Example
//!
//! ```
//! use codense_cache::{Cache, CacheConfig};
//!
//! let mut cache = Cache::new(CacheConfig { size_bytes: 256, line_bytes: 16, ways: 2 });
//! assert!(!cache.access(0));       // cold miss
//! assert!(cache.access(4));        // same line: hit
//! assert!(!cache.access(1 << 20)); // different line: miss
//! assert_eq!(cache.stats().misses, 2);
//! ```

use codense_core::telemetry;
use codense_vm::{Fetch, FetchStats};

/// Cache geometry. All three parameters must be powers of two and
/// `size_bytes >= line_bytes * ways`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (1 = direct-mapped).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Line-granular accesses.
    pub accesses: u64,
    /// Misses (including cold misses).
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; 0 for an untouched cache.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[s]` holds up to `ways` tags, most recently used last.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not power-of-two or the capacity is smaller
    /// than one line per way.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(config.size_bytes.is_power_of_two(), "capacity must be a power of two");
        assert!(config.ways >= 1 && config.ways.is_power_of_two(), "ways must be a power of two");
        assert!(
            config.size_bytes >= config.line_bytes * config.ways,
            "capacity below one line per way"
        );
        Cache { config, sets: vec![Vec::new(); config.sets()], stats: CacheStats::default() }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses the line containing byte `addr`. Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes as u64;
        let set = (line as usize) % self.config.sets();
        let tags = &mut self.sets[set];
        self.stats.accesses += 1;
        telemetry::CACHE_ACCESSES.inc();
        if let Some(pos) = tags.iter().position(|&t| t == line) {
            let tag = tags.remove(pos);
            tags.push(tag);
            telemetry::CACHE_HITS.inc();
            true
        } else {
            self.stats.misses += 1;
            telemetry::CACHE_MISSES.inc();
            if tags.len() == self.config.ways {
                tags.remove(0);
                telemetry::CACHE_EVICTIONS.inc();
            }
            tags.push(line);
            false
        }
    }

    /// Accesses every line overlapping the byte range `[addr, addr + len)`.
    pub fn access_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let lb = self.config.line_bytes as u64;
        let first = addr / lb;
        let last = (addr + len - 1) / lb;
        for line in first..=last {
            self.access(line * lb);
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
    }
}

/// A program-memory reference: starting *nibble* address and nibble length
/// (the fetch domain's units; divide by two for bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchRef {
    /// Starting nibble address.
    pub nibble_addr: u64,
    /// Nibbles consumed from program memory (0 for instructions delivered
    /// out of the dictionary expansion buffer).
    pub nibbles: u64,
}

/// Wraps any fetch engine and records each program-memory reference it
/// makes (derived from its own fetch counters, so buffered dictionary
/// deliveries correctly record zero memory traffic).
#[derive(Debug)]
pub struct TracingFetch<F> {
    inner: F,
    trace: Vec<FetchRef>,
}

impl<F: Fetch> TracingFetch<F> {
    /// Wraps a fetch engine.
    pub fn new(inner: F) -> TracingFetch<F> {
        TracingFetch { inner, trace: Vec::new() }
    }

    /// The recorded reference trace.
    pub fn trace(&self) -> &[FetchRef] {
        &self.trace
    }

    /// Consumes the adapter, returning the trace.
    pub fn into_trace(self) -> Vec<FetchRef> {
        self.trace
    }

    /// Replays the recorded trace against a cache.
    pub fn replay(&self, cache: &mut Cache) {
        replay(&self.trace, cache);
    }
}

/// Replays a reference trace against a cache (nibble addresses halved to
/// bytes, lengths rounded out to whole bytes).
pub fn replay(trace: &[FetchRef], cache: &mut Cache) {
    telemetry::CACHE_REPLAYS.inc();
    for r in trace {
        if r.nibbles == 0 {
            continue;
        }
        let start = r.nibble_addr / 2;
        let end = (r.nibble_addr + r.nibbles).div_ceil(2);
        cache.access_range(start, end - start);
    }
}

impl<F: Fetch> Fetch for TracingFetch<F> {
    fn fetch(&mut self, pc: u64) -> Result<codense_vm::fetch::Fetched, codense_vm::MachineError> {
        let before = self.inner.stats().nibbles_fetched;
        let out = self.inner.fetch(pc)?;
        let consumed = self.inner.stats().nibbles_fetched - before;
        self.trace.push(FetchRef { nibble_addr: pc, nibbles: consumed });
        Ok(out)
    }

    fn granule(&self) -> u32 {
        self.inner.granule()
    }

    fn stats(&self) -> FetchStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct(size: usize, line: usize) -> Cache {
        Cache::new(CacheConfig { size_bytes: size, line_bytes: line, ways: 1 })
    }

    #[test]
    fn hits_within_line() {
        let mut c = direct(256, 16);
        assert!(!c.access(32));
        for a in 32..48 {
            assert!(c.access(a), "offset {a}");
        }
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 17);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = direct(64, 16); // 4 sets
        assert!(!c.access(0));
        assert!(!c.access(64)); // same set, different tag -> evicts
        assert!(!c.access(0)); // conflict miss
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn associativity_absorbs_conflicts() {
        let mut c = Cache::new(CacheConfig { size_bytes: 64, line_bytes: 16, ways: 2 });
        assert!(!c.access(0));
        assert!(!c.access(64));
        assert!(c.access(0), "2-way keeps both lines");
        assert!(c.access(64));
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Cache::new(CacheConfig { size_bytes: 32, line_bytes: 16, ways: 2 });
        c.access(0); // A
        c.access(16); // B
        c.access(0); // touch A -> B is LRU
        c.access(32); // C evicts B
        assert!(c.access(0), "A still resident");
        assert!(!c.access(16), "B evicted");
    }

    #[test]
    fn access_range_touches_all_lines() {
        let mut c = direct(256, 16);
        c.access_range(8, 24); // spans lines 0 and 1
        assert_eq!(c.stats().accesses, 2);
        c.access_range(100, 0);
        assert_eq!(c.stats().accesses, 2, "empty range is free");
    }

    #[test]
    fn replay_skips_buffered_fetches() {
        let trace = vec![
            FetchRef { nibble_addr: 0, nibbles: 4 },
            FetchRef { nibble_addr: 0, nibbles: 0 }, // buffered expansion
            FetchRef { nibble_addr: 4, nibbles: 9 },
        ];
        let mut c = direct(256, 16);
        replay(&trace, &mut c);
        // 0..2 bytes and 2..7 bytes: both in line 0.
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        Cache::new(CacheConfig { size_bytes: 100, line_bytes: 16, ways: 1 });
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = direct(64, 16);
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0), "cold again after reset");
    }
}
