//! Exact-boundary coverage for the block-mode dictionary reset (the CLEAR
//! path at the 16-bit code cap).
//!
//! The encoder's reset branch is only exercised by inputs that assign all
//! 2^16 - 257 dynamic codes; these tests build such inputs deterministically,
//! compute the exact byte offsets at which the encoder emits CLEAR (by
//! replaying its dictionary state machine, without bit emission), and then
//! round-trip the stream truncated at every offset in a window around each
//! reset — the stream-ends-exactly-at-reset cases an aggregate test misses.

use std::collections::HashMap;

/// Replays `compress`'s dictionary state machine and returns the byte
/// offsets (index of the byte being consumed) at which a CLEAR is emitted.
fn reset_offsets(data: &[u8]) -> Vec<usize> {
    const FIRST: u32 = 257;
    const CAP: u32 = 1 << 16;
    let mut resets = Vec::new();
    if data.is_empty() {
        return resets;
    }
    let mut dict: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut next_code = FIRST;
    let mut current: Vec<u8> = vec![data[0]];
    let lookup =
        |dict: &HashMap<Vec<u8>, u32>, s: &[u8]| -> bool { s.len() == 1 || dict.contains_key(s) };
    for (i, &b) in data.iter().enumerate().skip(1) {
        let mut extended = current.clone();
        extended.push(b);
        if lookup(&dict, &extended) {
            current = extended;
            continue;
        }
        if next_code < CAP {
            dict.insert(extended, next_code);
            next_code += 1;
        } else {
            resets.push(i);
            dict.clear();
            next_code = FIRST;
        }
        current = vec![b];
    }
    resets
}

fn prng_bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut x = seed;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

fn roundtrip(data: &[u8]) {
    let packed = codense_lzw::compress(data);
    assert_eq!(
        codense_lzw::decompress(&packed).as_deref(),
        Some(data),
        "roundtrip failed at len {}",
        data.len()
    );
}

#[test]
fn double_reset_roundtrips_at_every_boundary_offset() {
    // Enough pseudo-random bytes to assign all dynamic codes twice over:
    // random 2-grams rarely repeat, so the dictionary gains roughly one
    // entry per input byte.
    let data = prng_bytes(0x1234_5678_9abc_def0, 300_000);
    let resets = reset_offsets(&data);
    assert!(resets.len() >= 2, "input must force >= 2 resets, got {}", resets.len());

    // Full-stream round trip across both resets.
    roundtrip(&data);

    // Truncate the input so the stream ends exactly at, just before, and
    // just after each CLEAR emission.
    for &at in &resets {
        for end in at.saturating_sub(3)..=(at + 3).min(data.len()) {
            roundtrip(&data[..end]);
        }
    }
}

#[test]
fn kwkwk_straddling_reset_roundtrips() {
    // Force the byte consumed during the reset to start an `aaa...` run:
    // right after CLEAR the encoder re-learns "aa" and the decoder must
    // take the code-not-yet-in-table (KwKwK) branch with a fresh table.
    let mut data = prng_bytes(0xfeed_beef_0000_0001, 200_000);
    let resets = reset_offsets(&data);
    assert!(!resets.is_empty());
    let at = resets[0];
    for (i, b) in data.iter_mut().enumerate().skip(at.saturating_sub(2)) {
        if i > at + 40 {
            break;
        }
        *b = b'a';
    }
    roundtrip(&data);
    // And again with the run stopping exactly at each boundary offset.
    for end in at..=(at + 40).min(data.len()) {
        roundtrip(&data[..end]);
    }
}

#[test]
fn reset_offsets_match_observed_clear_count() {
    // The simulated reset count agrees with the real encoder: compressing
    // a prefix that ends one byte before the first simulated reset emits no
    // CLEAR (stream decodes as a single block), and the full input decodes
    // with exactly the simulated number of resets. This pins the simulator
    // so the boundary tests above cannot drift from the implementation.
    let data = prng_bytes(0x0dd_ba11, 150_000);
    let resets = reset_offsets(&data);
    assert_eq!(resets.len(), 1, "sized to force exactly one reset");
    roundtrip(&data[..resets[0]]);
    roundtrip(&data[..resets[0] + 1]);
}
