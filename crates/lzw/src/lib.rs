#![warn(missing_docs)]

//! LZW compression equivalent to Unix `compress(1)`.
//!
//! The reproduced paper's Fig 11 compares its nibble-aligned dictionary
//! scheme against "Unix Compress", i.e. LZW with 9- to 16-bit codes and
//! block-mode dictionary reset. This crate implements that algorithm:
//!
//! * codes start at 9 bits and widen to 16 as the dictionary grows;
//! * code 256 is the CLEAR code; entries start at 257;
//! * when the dictionary fills, a CLEAR is emitted and the dictionary
//!   resets (the adaptive behaviour the paper credits Compress with:
//!   "an adaptive dictionary technique which can modify the dictionary in
//!   response to changes in the characteristics of the text");
//! * codes are packed MSB-first (real `compress` packs LSB-first and pads
//!   on width changes; the bit *count* — what the ratio comparison needs —
//!   matches up to that sub-byte padding).
//!
//! # Example
//!
//! ```
//! let data = b"tobeornottobeortobeornot".repeat(10);
//! let packed = codense_lzw::compress(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(codense_lzw::decompress(&packed).unwrap(), data);
//! ```

use std::collections::HashMap;

/// The CLEAR (dictionary reset) code.
const CLEAR: u32 = 256;
/// First dynamically assigned code.
const FIRST: u32 = 257;
/// Minimum code width in bits.
const MIN_BITS: u32 = 9;
/// Maximum code width in bits (as in `compress -b16`).
const MAX_BITS: u32 = 16;

struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> BitWriter {
        BitWriter { out: Vec::new(), acc: 0, nbits: 0 }
    }

    fn put(&mut self, code: u32, width: u32) {
        self.acc = (self.acc << width) | code as u64;
        self.nbits += width;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push(((self.acc << (8 - self.nbits)) & 0xff) as u8);
        }
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: u64,
}

impl BitReader<'_> {
    fn get(&mut self, width: u32) -> Option<u32> {
        if self.pos + width as u64 > self.data.len() as u64 * 8 {
            return None;
        }
        let mut v = 0u32;
        for _ in 0..width {
            let byte = self.data[(self.pos / 8) as usize];
            let bit = (byte >> (7 - self.pos % 8)) & 1;
            v = (v << 1) | bit as u32;
            self.pos += 1;
        }
        Some(v)
    }
}

/// Code width used when the encoder's next free code is `next_code`: enough
/// bits for every code already assigned (`< next_code`), at least
/// [`MIN_BITS`], at most [`MAX_BITS`]. Shared by encoder and decoder so the
/// two can never disagree.
fn width_for(next_code: u32) -> u32 {
    let needed = 32 - (next_code - 1).leading_zeros();
    needed.clamp(MIN_BITS, MAX_BITS)
}

/// Compresses a buffer with LZW (9→16-bit codes, block mode).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    if data.is_empty() {
        return w.finish();
    }
    let mut dict: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut next_code = FIRST;
    let mut current: Vec<u8> = vec![data[0]];

    let lookup = |dict: &HashMap<Vec<u8>, u32>, s: &[u8]| -> Option<u32> {
        if s.len() == 1 {
            Some(s[0] as u32)
        } else {
            dict.get(s).copied()
        }
    };

    for &b in &data[1..] {
        let mut extended = current.clone();
        extended.push(b);
        if lookup(&dict, &extended).is_some() {
            current = extended;
            continue;
        }
        let code = lookup(&dict, &current).expect("current is always in the dictionary");
        w.put(code, width_for(next_code));
        if next_code < (1 << MAX_BITS) {
            dict.insert(extended, next_code);
            next_code += 1;
        } else {
            // Dictionary full: reset (block mode). The pending insertion
            // (`extended`) is dropped — symmetric with the decoder, which
            // drops its own pending insertion for this code when the CLEAR
            // arrives, so the two tables never disagree across a reset
            // (pinned by `tests/block_reset_boundary.rs`).
            w.put(CLEAR, width_for(next_code));
            dict.clear();
            next_code = FIRST;
        }
        current = vec![b];
    }
    let code = lookup(&dict, &current).expect("final string is in the dictionary");
    w.put(code, width_for(next_code));
    w.finish()
}

/// Exact compressed size in bytes without materializing the stream.
pub fn compressed_size(data: &[u8]) -> usize {
    compress(data).len()
}

/// Typed decode failures for hostile LZW streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// A code referenced a dictionary entry that cannot exist yet (beyond
    /// the KwKwK pending slot).
    InvalidCode {
        /// Bit offset of the start of the offending code.
        at_bit: u64,
        /// The offending code value.
        code: u32,
    },
    /// Decoding would exceed the caller's output bound — the hostile-input
    /// guard against decompression bombs (each 2-byte code can expand to a
    /// dictionary string of up to 2^16 bytes, an ~32000× amplification).
    OutputLimitExceeded {
        /// The caller-supplied output bound in bytes.
        limit: usize,
        /// Bytes already decoded when the bound was hit.
        decoded: usize,
    },
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DecompressError::InvalidCode { at_bit, code } => {
                write!(f, "invalid LZW code {code} at bit {at_bit}")
            }
            DecompressError::OutputLimitExceeded { limit, decoded } => {
                write!(f, "LZW output exceeds the {limit}-byte bound ({decoded} decoded)")
            }
        }
    }
}

impl std::error::Error for DecompressError {}

/// Decompresses an LZW stream produced by [`compress`].
///
/// Returns `None` on a malformed stream. Output size is unbounded — when
/// the stream may be hostile, use [`decompress_checked`] with an explicit
/// bound instead.
pub fn decompress(packed: &[u8]) -> Option<Vec<u8>> {
    decompress_checked(packed, usize::MAX).ok()
}

/// [`decompress`] with a hard output bound and typed errors.
///
/// A truncated final code is indistinguishable from the encoder's sub-byte
/// padding and ends the stream; structural failures are typed. The output
/// buffer never grows past `max_out` bytes, so a hostile stream cannot
/// force an allocation the caller did not budget for.
///
/// # Errors
///
/// See [`DecompressError`].
pub fn decompress_checked(packed: &[u8], max_out: usize) -> Result<Vec<u8>, DecompressError> {
    let mut r = BitReader { data: packed, pos: 0 };
    let mut out = Vec::new();
    let push = |out: &mut Vec<u8>, entry: &[u8]| {
        if max_out - out.len() < entry.len() {
            return Err(DecompressError::OutputLimitExceeded {
                limit: max_out,
                decoded: out.len(),
            });
        }
        out.extend_from_slice(entry);
        Ok(())
    };
    'blocks: loop {
        // (Re)initialize for a block. `strings[256]` is a placeholder for
        // the CLEAR code, never dereferenced.
        let mut strings: Vec<Vec<u8>> = (0..=255u8).map(|b| vec![b]).collect();
        strings.push(Vec::new());
        // The encoder's next_code when it emitted the first code of a block
        // was FIRST (= strings.len() here).
        let at_bit = r.pos;
        let Some(first) = r.get(width_for(strings.len() as u32)) else { break };
        if first == CLEAR {
            continue;
        }
        if first > 255 {
            return Err(DecompressError::InvalidCode { at_bit, code: first });
        }
        let mut prev: Vec<u8> = strings[first as usize].clone();
        push(&mut out, &prev)?;
        loop {
            // For subsequent codes the decoder's table trails the encoder's
            // next_code by one pending insertion, except when both sides hit
            // the cap and stop inserting.
            let encoder_next = (strings.len() as u32 + 1).min(1 << MAX_BITS);
            let at_bit = r.pos;
            let Some(code) = r.get(width_for(encoder_next)) else { break 'blocks };
            if code == CLEAR {
                continue 'blocks;
            }
            let entry = if (code as usize) < strings.len() && code != CLEAR {
                strings[code as usize].clone()
            } else if code as usize == strings.len() {
                // KwKwK: the code about to be defined.
                let mut s = prev.clone();
                s.push(prev[0]);
                s
            } else {
                return Err(DecompressError::InvalidCode { at_bit, code });
            };
            push(&mut out, &entry)?;
            let mut new_entry = prev.clone();
            new_entry.push(entry[0]);
            if strings.len() < (1 << MAX_BITS) as usize {
                strings.push(new_entry);
            }
            prev = entry;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        assert_eq!(decompress(&packed).as_deref(), Some(data), "len {}", data.len());
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"aaa");
    }

    #[test]
    fn kwkwk_case() {
        // The classic pathological input for the code-not-yet-in-table case.
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        roundtrip(b"abababababababababababab");
    }

    #[test]
    fn text_roundtrip() {
        let data = b"to be or not to be that is the question ".repeat(50);
        roundtrip(&data);
        assert!(compress(&data).len() < data.len() / 2);
    }

    #[test]
    fn binary_roundtrip() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7 % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn width_growth_boundary() {
        // Enough distinct pairs to push past 9-bit codes.
        let mut data = Vec::new();
        for i in 0..400u16 {
            data.push((i % 256) as u8);
            data.push((i / 256) as u8);
            data.push(((i * 13) % 256) as u8);
        }
        roundtrip(&data);
    }

    #[test]
    fn dictionary_reset_block_mode() {
        // Force > 65536 dictionary entries so a CLEAR is emitted.
        let mut data = Vec::with_capacity(400_000);
        let mut x = 123456789u64;
        for _ in 0..400_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.push((x >> 33) as u8);
        }
        roundtrip(&data);
    }

    #[test]
    fn first_code_out_of_range_is_typed() {
        // 9-bit MSB-first code 511: no dictionary entry can exist yet.
        let packed = [0xff, 0x80];
        assert_eq!(
            decompress_checked(&packed, usize::MAX),
            Err(DecompressError::InvalidCode { at_bit: 0, code: 511 })
        );
        assert_eq!(decompress(&packed), None);
    }

    #[test]
    fn code_beyond_table_is_typed() {
        // Valid first code (9-bit 'a' = 97), then 9-bit code 300: the table
        // holds 257 entries plus the KwKwK slot 257, so 300 cannot exist.
        let mut w = BitWriter::new();
        w.put(97, 9);
        w.put(300, 9);
        let packed = w.finish();
        assert_eq!(
            decompress_checked(&packed, usize::MAX),
            Err(DecompressError::InvalidCode { at_bit: 9, code: 300 })
        );
        assert_eq!(decompress(&packed), None);
    }

    #[test]
    fn truncated_stream_ends_without_panic() {
        let packed = compress(b"to be or not to be that is the question ");
        for cut in 0..packed.len() {
            // Every prefix either decodes to a prefix of the output or
            // reports a typed error; none panics or over-allocates.
            let _ = decompress_checked(&packed[..cut], 1 << 16);
        }
    }

    #[test]
    fn output_bound_stops_expansion_bombs() {
        // Highly repetitive input: a small stream expanding to 100 KiB.
        let data = b"a".repeat(100 * 1024);
        let packed = compress(&data);
        assert!(packed.len() < 2048);
        match decompress_checked(&packed, 4096) {
            Err(DecompressError::OutputLimitExceeded { limit: 4096, decoded }) => {
                assert!(decoded <= 4096);
            }
            other => panic!("expected output-limit error, got {other:?}"),
        }
        // An exact bound still succeeds.
        assert_eq!(decompress_checked(&packed, data.len()).as_deref(), Ok(&data[..]));
    }

    #[test]
    fn incompressible_data_expands_bounded() {
        let mut x = 99u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 40) as u8
            })
            .collect();
        let packed = compress(&data);
        // Worst case ≈ 16/8 = 2x; random bytes land near 9/8..16/8.
        assert!(packed.len() < data.len() * 2);
    }
}
