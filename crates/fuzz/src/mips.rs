//! The MIPS half of the cross-ISA differential battery.
//!
//! The PPC pipeline ([`crate::gen`] → [`crate::spec`] → [`crate::oracle`])
//! is typed against `codense_ppc` end to end; rather than make three
//! modules generic over every ISA detail (condition registers, link
//! registers, branch shapes), this module is a self-contained twin: a
//! vocabulary-based generator of terminating MIPS programs, a lockstep
//! oracle over [`codense_mips::Machine`], and a campaign driver producing
//! the same deterministic report format as [`crate::runner::run`].
//!
//! Per-case seeds derive from the campaign seed with the same golden-ratio
//! salt as the PPC campaign, so `--isa ppc` and `--isa mips` walk the same
//! seed stream: one campaign seed exercises both compressor ports on
//! decorrelated but reproducible inputs.
//!
//! Register discipline mirrors the PPC battery's: only `$t9` (jump-table
//! dispatch) and `$ra` (`jal` link values) ever hold fetch-domain code
//! addresses, so every other register must match bit-for-bit between the
//! native and compressed runs at every step.

use codense_codegen::Rng;
use codense_core::parallel::par_map;
use codense_core::{telemetry, verify, CompressionConfig, Compressor};
use codense_isa::IsaRef;
use codense_mips::asm::Assembler;
use codense_mips::machine::Machine;
use codense_mips::reg::{Reg, A0, A1, A2, A3, GP, RA, S0, S1, S2, S3, T8, T9, V0, V1, ZERO};
use codense_mips::MInsn;
use codense_obj::{FunctionInfo, JumpTable, ObjectModule};
use codense_vm::fetch::{CompressedFetcher, Fetch, LinearFetcher};
use codense_vm::machine::Outcome;

use crate::gen::GenConfig;
use crate::oracle::{error_kind, Divergence, DivergenceKind, LockstepOk, TraceMask};
use crate::runner::{FuzzOptions, FuzzReport};
use crate::spec::{DATA_BASE, DATA_MASK, JT_BASE, MEM_BYTES};

/// Same per-case seed salt as the PPC campaign (`crate::runner`), so both
/// ISAs draw from the same case-seed stream for a given campaign seed.
const CASE_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Registers the generator may read or write in straight-line code.
/// Excluded by role: `$zero`/`$at`, `$v0` (exit code staging), `$s0`–`$s3`
/// (loop counters), `$t8`/`$t9` (dispatch scratch), `$gp` (data base),
/// `$sp`/`$fp`, `$ra` (link).
pub const MIPS_DATA_REGS: [Reg; 13] = [
    V1,
    A0,
    A1,
    A2,
    A3,
    codense_mips::reg::T0,
    codense_mips::reg::T1,
    codense_mips::reg::T2,
    codense_mips::reg::T3,
    codense_mips::reg::T4,
    codense_mips::reg::T5,
    codense_mips::reg::T6,
    codense_mips::reg::T7,
];

/// Loop-counter bank: depth-0/1 loops of the entry use `$s0`/`$s1`,
/// callee loops use `$s2`/`$s3` (callees never save/restore them, so the
/// banks must not overlap).
const LOOP_REGS: [Reg; 4] = [S0, S1, S2, S3];
/// First [`LOOP_REGS`] index available to non-entry functions.
const CALLEE_LOOP_BASE: usize = 2;

/// A built MIPS fuzz program: the module plus the data-memory address of
/// each jump table.
#[derive(Debug, Clone)]
pub struct MipsProgram {
    /// The assembled, validated module.
    pub module: ObjectModule,
    /// Data-memory address of each `module.jump_tables[t]`.
    pub table_addrs: Vec<u32>,
}

struct MGen<'a> {
    rng: &'a mut Rng,
    cfg: GenConfig,
    /// Instruction vocabulary: straight-line code mostly re-draws from this
    /// pool so repeated sequences exist for the dictionary to find.
    vocab: Vec<MInsn>,
    a: Assembler,
    /// Per-table arm-entry label names, resolved after emission.
    tables: Vec<Vec<String>>,
    next_label: usize,
    loop_base: usize,
}

impl MGen<'_> {
    fn fresh(&mut self, what: &str) -> String {
        self.next_label += 1;
        format!("m_{}_{}", what, self.next_label)
    }

    fn data_reg(&mut self) -> Reg {
        *self.rng.pick(&MIPS_DATA_REGS)
    }

    /// One fresh straight-line instruction over the data registers. Memory
    /// accesses use bounded positive word-aligned offsets from `$gp`.
    fn fresh_op(&mut self) -> MInsn {
        let rd = self.data_reg();
        let rs = self.data_reg();
        let rt = self.data_reg();
        let imm = self.rng.next_u64() as i16;
        let uimm = self.rng.next_u64() as u16;
        let d = (self.rng.below(0x7FF8) & !3) as i16;
        let sa = self.rng.range(1, 31) as u8;
        match self.rng.weighted(&[
            16, // I-format arithmetic
            10, // I-format logical
            8,  // loads
            6,  // stores
            14, // R-format arithmetic
            10, // R-format logic / shifts
        ]) {
            0 => match self.rng.below(3) {
                0 => MInsn::Addiu { rt: rd, rs, imm },
                1 => MInsn::Slti { rt: rd, rs, imm },
                _ => MInsn::Sltiu { rt: rd, rs, imm },
            },
            1 => match self.rng.below(4) {
                0 => MInsn::Andi { rt: rd, rs, imm: uimm },
                1 => MInsn::Ori { rt: rd, rs, imm: uimm },
                2 => MInsn::Xori { rt: rd, rs, imm: uimm },
                _ => MInsn::Lui { rt: rd, imm: uimm },
            },
            2 => match self.rng.below(5) {
                0 => MInsn::Lw { rt: rd, base: GP, offset: d },
                1 => MInsn::Lh { rt: rd, base: GP, offset: d },
                2 => MInsn::Lhu { rt: rd, base: GP, offset: d },
                3 => MInsn::Lb { rt: rd, base: GP, offset: d },
                _ => MInsn::Lbu { rt: rd, base: GP, offset: d },
            },
            3 => match self.rng.below(3) {
                0 => MInsn::Sw { rt: rd, base: GP, offset: d },
                1 => MInsn::Sh { rt: rd, base: GP, offset: d },
                _ => MInsn::Sb { rt: rd, base: GP, offset: d },
            },
            4 => match self.rng.below(5) {
                0 => MInsn::Addu { rd, rs, rt },
                1 => MInsn::Subu { rd, rs, rt },
                2 => MInsn::Mul { rd, rs, rt },
                3 => MInsn::Div { rd, rs, rt },
                _ => MInsn::Divu { rd, rs, rt },
            },
            _ => match self.rng.below(9) {
                0 => MInsn::And { rd, rs, rt },
                1 => MInsn::Or { rd, rs, rt },
                2 => MInsn::Xor { rd, rs, rt },
                3 => MInsn::Nor { rd, rs, rt },
                4 => MInsn::Slt { rd, rs, rt },
                5 => MInsn::Sltu { rd, rs, rt },
                6 => MInsn::Sll { rd, rt, sa },
                7 => MInsn::Srl { rd, rt, sa },
                _ => MInsn::Sra { rd, rt, sa },
            },
        }
    }

    /// A run of straight-line instructions, drawn mostly from the
    /// vocabulary. Occasionally emits a masked indexed access through `$t8`
    /// (whose value is plain data, identical in both fetch domains).
    fn straight(&mut self) {
        let n = self.rng.range(1, self.cfg.max_block);
        for _ in 0..n {
            if self.rng.chance(0.12) {
                let src = self.data_reg();
                let val = self.data_reg();
                self.a.emit(MInsn::Andi { rt: T8, rs: src, imm: DATA_MASK });
                self.a.emit(MInsn::Addu { rd: T8, rs: GP, rt: T8 });
                self.a.emit(if self.rng.chance(0.5) {
                    MInsn::Lw { rt: val, base: T8, offset: 0 }
                } else {
                    MInsn::Sw { rt: val, base: T8, offset: 0 }
                });
            } else if !self.vocab.is_empty() && self.rng.chance(0.8) {
                let op = *self.rng.pick(&self.vocab);
                self.a.emit(op);
            } else {
                let op = self.fresh_op();
                self.vocab.push(op);
                self.a.emit(op);
            }
        }
    }

    fn region(&mut self, depth: usize, may_call: bool, funcs: usize) {
        let max_depth = self.cfg.max_loop_depth.min(LOOP_REGS.len() - self.loop_base);
        let choices: &[u32] = &[
            40,                                        // straight
            if depth < max_depth { 14 } else { 0 },    // loop
            12,                                        // if
            if depth == 0 { 6 } else { 0 },            // dispatch
            if may_call && funcs > 1 { 8 } else { 0 }, // call
        ];
        match self.rng.weighted(choices) {
            0 => self.straight(),
            1 => {
                let trips = self.rng.range(1, 6) as i16;
                let counter = LOOP_REGS[self.loop_base + depth];
                let head = self.fresh("loop");
                self.a.emit(MInsn::Addiu { rt: counter, rs: ZERO, imm: trips });
                self.a.label(&head);
                self.body(depth + 1, may_call, funcs, 2);
                self.a.emit(MInsn::Addiu { rt: counter, rs: counter, imm: -1 });
                self.a.bgtz(counter, &head);
            }
            2 => {
                let join = self.fresh("join");
                let lhs = self.data_reg();
                match self.rng.below(4) {
                    0 => {
                        let rhs = self.data_reg();
                        self.a.beq(lhs, rhs, &join);
                    }
                    1 => {
                        let rhs = self.data_reg();
                        self.a.bne(lhs, rhs, &join);
                    }
                    2 => {
                        self.a.blez(lhs, &join);
                    }
                    _ => {
                        self.a.bltz(lhs, &join);
                    }
                };
                self.body(depth, may_call, funcs, 2);
                self.a.label(&join);
            }
            3 => self.dispatch(depth, may_call, funcs),
            _ => {
                let callee = self.rng.range(1, funcs - 1);
                self.a.jal(&format!("mfn_{callee}"));
            }
        }
    }

    /// A jump-table dispatch: mask the index to the table, scale it, load
    /// the patched target through `$t9`, and jump. `$t8` holds the scaled
    /// index (plain data); only `$t9` ever holds the fetch-domain address.
    fn dispatch(&mut self, depth: usize, may_call: bool, funcs: usize) {
        let width = 1usize << self.rng.range(1, 3); // 2, 4 or 8 arms
        let addr = JT_BASE + 4 * self.tables.iter().map(|t| t.len() as u32).sum::<u32>();
        let index = self.data_reg();
        self.a.emit(MInsn::Andi { rt: T8, rs: index, imm: (width - 1) as u16 });
        self.a.emit(MInsn::Sll { rd: T8, rt: T8, sa: 2 });
        self.a.emit(MInsn::Lui { rt: T9, imm: (addr >> 16) as u16 });
        self.a.emit(MInsn::Ori { rt: T9, rs: T9, imm: (addr & 0xFFFF) as u16 });
        self.a.emit(MInsn::Addu { rd: T9, rs: T9, rt: T8 });
        self.a.emit(MInsn::Lw { rt: T9, base: T9, offset: 0 });
        self.a.emit(MInsn::Jr { rs: T9 });
        let join = self.fresh("join");
        let mut entries = Vec::with_capacity(width);
        for _ in 0..width {
            let entry = self.fresh("arm");
            self.a.label(&entry);
            entries.push(entry);
            self.body(depth + 1, may_call, funcs, 1);
            self.a.j(&join);
        }
        self.a.label(&join);
        self.tables.push(entries);
    }

    fn body(&mut self, depth: usize, may_call: bool, funcs: usize, max_regions: usize) {
        let n = self.rng.range(1, max_regions.max(1));
        for _ in 0..n {
            self.region(depth, may_call, funcs);
        }
    }
}

/// Generates a terminating MIPS program from the RNG stream: an entry
/// function (loops, ifs, dispatches, calls) plus up to `cfg.max_funcs - 1`
/// leaf callees. The entry ends in `syscall` with the exit code in `$v0`;
/// leaves end in `jr $ra`.
pub fn generate_mips(rng: &mut Rng, cfg: &GenConfig) -> Result<MipsProgram, String> {
    let funcs_n = rng.range(1, cfg.max_funcs.max(1));
    let mut g = MGen {
        rng,
        cfg: cfg.clone(),
        vocab: Vec::new(),
        a: Assembler::new(),
        tables: Vec::new(),
        next_label: 0,
        loop_base: 0,
    };

    let reg_init: Vec<(Reg, u32)> = MIPS_DATA_REGS
        .iter()
        .filter(|_| g.rng.chance(0.7))
        .copied()
        .collect::<Vec<_>>()
        .into_iter()
        .map(|r| (r, g.rng.next_u64() as u32))
        .collect();
    let result_reg = *g.rng.pick(&MIPS_DATA_REGS);

    let mut functions: Vec<FunctionInfo> = Vec::new();
    for fi in 0..funcs_n {
        g.loop_base = if fi == 0 { 0 } else { CALLEE_LOOP_BASE };
        let start = g.a.here();
        g.a.label(&format!("mfn_{fi}"));
        let mut prologue_len = 0;
        let framed = fi != 0 && g.rng.chance(0.5);
        if fi == 0 {
            // Entry preamble: data base pointer and initial register values.
            g.a.emit(MInsn::Lui { rt: GP, imm: (DATA_BASE >> 16) as u16 });
            for &(reg, value) in &reg_init {
                g.a.emit(MInsn::Lui { rt: reg, imm: (value >> 16) as u16 });
                g.a.emit(MInsn::Ori { rt: reg, rs: reg, imm: (value & 0xFFFF) as u16 });
            }
            prologue_len = g.a.here() - start;
        } else if framed {
            // Leaves save nothing (their loop bank is caller-disjoint), but
            // a balanced frame adjust reproduces common prologue shapes.
            g.a.emit(MInsn::Addiu {
                rt: codense_mips::reg::SP,
                rs: codense_mips::reg::SP,
                imm: -24,
            });
            prologue_len = 1;
        }
        let regions = g.rng.range(1, g.cfg.max_regions);
        for _ in 0..regions {
            g.region(0, fi == 0, funcs_n);
        }
        let epi_start = g.a.here();
        if fi == 0 {
            g.a.emit(MInsn::Addu { rd: V0, rs: result_reg, rt: ZERO });
            g.a.emit(MInsn::Syscall);
        } else {
            if framed {
                g.a.emit(MInsn::Addiu {
                    rt: codense_mips::reg::SP,
                    rs: codense_mips::reg::SP,
                    imm: 24,
                });
            }
            g.a.ret();
        }
        let end = g.a.here();
        functions.push(FunctionInfo {
            name: format!("mfn_{fi}"),
            start,
            end,
            prologue_len,
            epilogues: std::iter::once(epi_start..end).collect(),
        });
    }

    // Resolve jump-table entry labels to instruction indices.
    let mut jump_tables = Vec::with_capacity(g.tables.len());
    let mut table_addrs = Vec::with_capacity(g.tables.len());
    let mut next_addr = JT_BASE;
    for labels in &g.tables {
        let targets: Vec<usize> =
            labels.iter().map(|l| g.a.label_pos(l).expect("arm label defined")).collect();
        table_addrs.push(next_addr);
        next_addr += 4 * targets.len() as u32;
        jump_tables.push(JumpTable { targets });
    }

    let code = g.a.finish().map_err(|e| format!("mips assembly failed: {e}"))?;
    let mut module = ObjectModule::new("fuzz-mips");
    module.code = code;
    module.functions = functions;
    module.jump_tables = jump_tables;
    module
        .validate_with(IsaRef(&codense_mips::ISA))
        .map_err(|e| format!("invalid mips module: {e}"))?;
    Ok(MipsProgram { module, table_addrs })
}

/// Instruction equality modulo branch-offset patching: the compressor
/// rewrites relative branch and jump displacements into compressed-domain
/// units, so only the non-offset fields are comparable across domains.
fn same_insn_mips(native: &MInsn, comp: &MInsn) -> bool {
    use MInsn::*;
    match (native, comp) {
        (Bltz { rs: a, .. }, Bltz { rs: b, .. }) => a == b,
        (Bgez { rs: a, .. }, Bgez { rs: b, .. }) => a == b,
        (Blez { rs: a, .. }, Blez { rs: b, .. }) => a == b,
        (Bgtz { rs: a, .. }, Bgtz { rs: b, .. }) => a == b,
        (Beq { rs: a, rt: x, .. }, Beq { rs: b, rt: y, .. }) => a == b && x == y,
        (Bne { rs: a, rt: x, .. }, Bne { rs: b, rt: y, .. }) => a == b && x == y,
        (J { .. }, J { .. }) => true,
        (Jal { .. }, Jal { .. }) => true,
        _ => native == comp,
    }
}

fn outcome_kind(o: &Outcome) -> &'static str {
    match o {
        Outcome::Next => "next",
        Outcome::Branch(_) => "branch",
        Outcome::Halt => "halt",
    }
}

/// First differing data-memory byte outside the masked ranges.
fn first_mem_difference(native: &Machine, comp: &Machine, mask: &TraceMask) -> Option<usize> {
    (0..native.mem.len().min(comp.mem.len()))
        .find(|&i| native.mem[i] != comp.mem[i] && !mask.mem_skip.iter().any(|r| r.contains(&i)))
}

/// The oracle mask for generated MIPS programs: `$t9` carries fetch-domain
/// addresses in dispatch sequences, `$ra` holds `jal` link values (also
/// fetch-domain), and the jump-table region of data memory holds
/// domain-specific entries by construction.
fn mips_mask(program: &MipsProgram) -> TraceMask {
    let entries: usize = program.module.jump_tables.iter().map(|t| t.targets.len()).sum();
    let mut mask = TraceMask::skipping_gprs(&[T9.number(), RA.number()]);
    mask.mem_skip = std::iter::once(JT_BASE as usize..JT_BASE as usize + 4 * entries).collect();
    mask
}

/// Runs the MIPS differential oracle: the same program once through the
/// native [`LinearFetcher`], once through the [`CompressedFetcher`], with
/// the full architectural trace compared at every step (PC-to-atom
/// correspondence, fetched instruction modulo offset patching, every
/// unmasked GPR) and memory compared at halt.
///
/// # Errors
///
/// Returns the first [`Divergence`] between the two traces.
pub fn lockstep_mips(
    module: &ObjectModule,
    compressed: &codense_core::CompressedProgram,
    table_addrs: &[u32],
    mask: &TraceMask,
    mem_bytes: usize,
    max_steps: u64,
) -> Result<LockstepOk, Divergence> {
    lockstep_mips_with(
        CompressedFetcher::new(compressed),
        module,
        compressed,
        table_addrs,
        mask,
        mem_bytes,
        max_steps,
    )
}

/// [`lockstep_mips`] with a caller-supplied compressed fetcher (the
/// corruption self-check passes a deliberately damaged one).
///
/// # Errors
///
/// Returns the first [`Divergence`] between the two traces.
pub fn lockstep_mips_with(
    comp_fetch: CompressedFetcher,
    module: &ObjectModule,
    compressed: &codense_core::CompressedProgram,
    table_addrs: &[u32],
    mask: &TraceMask,
    mem_bytes: usize,
    max_steps: u64,
) -> Result<LockstepOk, Divergence> {
    if !compressed.overflow_table.is_empty() {
        return Ok(LockstepOk::SkippedOverflow);
    }
    let mut comp_fetch = comp_fetch;
    let mut native_fetch = LinearFetcher::new(module.code.clone());
    let granule = comp_fetch.granule();

    // Atom map: expected compressed PC for each original instruction index.
    let mut expected_pc = vec![u64::MAX; module.code.len()];
    for (i, atom) in compressed.atoms.iter().enumerate() {
        for k in 0..atom.covered() {
            if let Some(slot) = expected_pc.get_mut(atom.orig() + k) {
                *slot = compressed.addresses[i];
            }
        }
    }

    let mut native = Machine::new(mem_bytes);
    let mut comp = Machine::new(mem_bytes);
    if module.jump_tables.len() != table_addrs.len()
        || compressed.jump_tables.len() != table_addrs.len()
    {
        return Err(Divergence {
            step: 0,
            kind: DivergenceKind::PcMismatch,
            detail: "table count mismatch".into(),
        });
    }
    for (t, table) in module.jump_tables.iter().enumerate() {
        for (e, &target) in table.targets.iter().enumerate() {
            let addr = table_addrs[t] + 4 * e as u32;
            let seed = native
                .store32(addr, 8 * target as u32)
                .and_then(|()| comp.store32(addr, compressed.jump_tables[t][e] as u32));
            if let Err(err) = seed {
                return Err(Divergence {
                    step: 0,
                    kind: DivergenceKind::PcMismatch,
                    detail: format!("table seed: {err}"),
                });
            }
        }
    }

    let mut npc = 0u64;
    let mut cpc = compressed.address_of_orig(0).unwrap_or(0);

    for step in 0..max_steps {
        let diverge = |kind, detail| Err(Divergence { step, kind, detail });

        if npc.is_multiple_of(8) {
            if let Some(&want) = expected_pc.get((npc / 8) as usize) {
                if want != u64::MAX && cpc != want {
                    return diverge(
                        DivergenceKind::PcMismatch,
                        format!(
                            "native pc {npc:#x} maps to atom {want:#x}, compressed pc {cpc:#x}"
                        ),
                    );
                }
            }
        }

        let (nf, cf) = match (native_fetch.fetch(npc), comp_fetch.fetch(cpc)) {
            (Err(ne), Err(ce)) => {
                let (nk, ck) = (error_kind(&ne), error_kind(&ce));
                if nk == ck {
                    return Ok(LockstepOk::Faulted { steps: step, kind: nk });
                }
                return diverge(
                    DivergenceKind::ErrorMismatch,
                    format!("native fetch {nk}, compressed fetch {ck}"),
                );
            }
            (Err(ne), Ok(_)) => {
                return diverge(
                    DivergenceKind::ErrorMismatch,
                    format!("native fetch faulted ({}) but compressed delivered", error_kind(&ne)),
                );
            }
            (Ok(_), Err(ce)) => {
                return diverge(
                    DivergenceKind::ErrorMismatch,
                    format!("compressed fetch faulted ({}) but native delivered", error_kind(&ce)),
                );
            }
            (Ok(nf), Ok(cf)) => (nf, cf),
        };

        let ni = codense_mips::decode(nf.word);
        let ci = codense_mips::decode(cf.word);
        if !same_insn_mips(&ni, &ci) {
            return diverge(
                DivergenceKind::InsnMismatch,
                format!("native {ni:?} vs compressed {ci:?} at native pc {npc:#x}"),
            );
        }

        let no = native.step(&ni, npc, nf.next_pc, 8);
        let co = comp.step(&ci, cpc, cf.next_pc, granule);

        let (no, co) = match (no, co) {
            (Err(ne), Err(ce)) => {
                let (nk, ck) = (error_kind(&ne), error_kind(&ce));
                if nk == ck {
                    return Ok(LockstepOk::Faulted { steps: step + 1, kind: nk });
                }
                return diverge(
                    DivergenceKind::ErrorMismatch,
                    format!("native fault {nk}, compressed fault {ck}"),
                );
            }
            (Err(ne), Ok(_)) => {
                return diverge(
                    DivergenceKind::ErrorMismatch,
                    format!("only native faulted: {}", error_kind(&ne)),
                );
            }
            (Ok(_), Err(ce)) => {
                return diverge(
                    DivergenceKind::ErrorMismatch,
                    format!("only compressed faulted: {}", error_kind(&ce)),
                );
            }
            (Ok(no), Ok(co)) => (no, co),
        };

        for r in 0..32 {
            if mask.skip_gprs & (1 << r) == 0 && native.gpr[r] != comp.gpr[r] {
                return diverge(
                    DivergenceKind::RegMismatch,
                    format!(
                        "r{r}: native {:#010x}, compressed {:#010x} after {:?}",
                        native.gpr[r], comp.gpr[r], ni
                    ),
                );
            }
        }

        match (no, co) {
            (Outcome::Next, Outcome::Next) => {
                npc = nf.next_pc;
                cpc = cf.next_pc;
            }
            (Outcome::Branch(nt), Outcome::Branch(ct)) => {
                npc = nt;
                cpc = ct;
            }
            (Outcome::Halt, Outcome::Halt) => {
                if native.gpr[2] != comp.gpr[2] {
                    return diverge(
                        DivergenceKind::ExitMismatch,
                        format!("exit: native {}, compressed {}", native.gpr[2], comp.gpr[2]),
                    );
                }
                if let Some(addr) = first_mem_difference(&native, &comp, mask) {
                    return diverge(
                        DivergenceKind::MemMismatch,
                        format!(
                            "mem[{addr:#x}]: native {:#04x}, compressed {:#04x}",
                            native.mem[addr], comp.mem[addr]
                        ),
                    );
                }
                return Ok(LockstepOk::Completed { steps: step + 1, exit: native.gpr[2] });
            }
            (a, b) => {
                return diverge(
                    DivergenceKind::OutcomeMismatch,
                    format!("native {}, compressed {}", outcome_kind(&a), outcome_kind(&b)),
                );
            }
        }
    }
    Err(Divergence {
        step: max_steps,
        kind: DivergenceKind::StepLimit,
        detail: format!("no halt within {max_steps} steps"),
    })
}

/// The four encodings every case is checked under, with the MIPS port of
/// the compressor selected.
fn encodings() -> [(&'static str, CompressionConfig); 4] {
    [
        ("baseline", CompressionConfig::baseline()),
        ("one-byte", CompressionConfig::small_dictionary(32)),
        ("nibble", CompressionConfig::nibble_aligned()),
        ("huffman", CompressionConfig::huffman()),
    ]
}

/// Outcome of one MIPS case.
#[derive(Debug, Clone, Default)]
struct CaseOutcome {
    completed: [u64; 4],
    skipped: [u64; 4],
    agreed_faults: u64,
    failures: Vec<String>,
}

fn run_mips_case(opts: &FuzzOptions, case: usize) -> CaseOutcome {
    telemetry::FUZZ_CASES.inc();
    let case_seed = opts.seed ^ (case as u64 + 1).wrapping_mul(CASE_SALT);
    let mut out = CaseOutcome::default();
    let mut rng = Rng::new(case_seed);
    let program = match generate_mips(&mut rng, &GenConfig::default()) {
        Ok(p) => p,
        Err(e) => {
            out.failures.push(format!("case {case} seed {case_seed:#018x}: build failed: {e}"));
            return out;
        }
    };
    let mask = mips_mask(&program);

    for (ei, (label, config)) in encodings().into_iter().enumerate() {
        let compressed = match Compressor::new(config)
            .with_isa(IsaRef(&codense_mips::ISA))
            .compress(&program.module)
        {
            Ok(c) => c,
            Err(e) => {
                out.failures.push(format!(
                    "case {case} seed {case_seed:#018x}: [{label}] compress error: {e}"
                ));
                continue;
            }
        };
        if let Err(e) = verify::verify(&program.module, &compressed) {
            out.failures
                .push(format!("case {case} seed {case_seed:#018x}: [{label}] verify error: {e}"));
            continue;
        }
        telemetry::FUZZ_LOCKSTEP_RUNS.inc();
        match lockstep_mips(
            &program.module,
            &compressed,
            &program.table_addrs,
            &mask,
            MEM_BYTES,
            opts.max_steps,
        ) {
            Ok(LockstepOk::Completed { .. }) => out.completed[ei] += 1,
            Ok(LockstepOk::Faulted { .. }) => out.agreed_faults += 1,
            Ok(LockstepOk::SkippedOverflow) => out.skipped[ei] += 1,
            Err(divergence) => {
                telemetry::FUZZ_DIVERGENCES.inc();
                out.failures
                    .push(format!("case {case} seed {case_seed:#018x}: [{label}] {divergence}"));
            }
        }
    }
    out
}

/// Fixed-seed smoke test: a known program must compress under the nibble
/// encoding with a real dictionary and survive full-trace lockstep.
fn mips_smoke(max_steps: u64) -> (String, usize) {
    const SMOKE_SEED: u64 = 0x4B1D_C005;
    let max_steps = max_steps.max(1 << 20);
    let mut rng = Rng::new(SMOKE_SEED);
    let program = match generate_mips(&mut rng, &GenConfig::default()) {
        Ok(p) => p,
        Err(e) => return (format!("self-test: FAILED - mips smoke build: {e}"), 1),
    };
    let compressed = match Compressor::new(CompressionConfig::nibble_aligned())
        .with_isa(IsaRef(&codense_mips::ISA))
        .compress(&program.module)
    {
        Ok(c) => c,
        Err(e) => return (format!("self-test: FAILED - mips smoke compress: {e}"), 1),
    };
    if compressed.dictionary.is_empty() {
        return ("self-test: FAILED - mips smoke built no dictionary".into(), 1);
    }
    if let Err(e) = verify::verify(&program.module, &compressed) {
        return (format!("self-test: FAILED - mips smoke verify: {e}"), 1);
    }
    let mask = mips_mask(&program);
    telemetry::FUZZ_LOCKSTEP_RUNS.inc();
    match lockstep_mips(
        &program.module,
        &compressed,
        &program.table_addrs,
        &mask,
        MEM_BYTES,
        max_steps,
    ) {
        Ok(_) => (
            format!(
                "self-test: mips smoke ok ({} insns, {} dictionary entries)",
                program.module.len(),
                compressed.dictionary.len()
            ),
            0,
        ),
        Err(d) => (format!("self-test: FAILED - mips smoke diverged: {d}"), 1),
    }
}

/// Runs a MIPS differential fuzz campaign. Same determinism contract as
/// [`crate::runner::run`]: the report is byte-identical for a given
/// `(cases, seed)` pair regardless of worker count. Fault-injection and
/// hybrid batteries are PPC-only ([`FuzzOptions::fault_tries`] and
/// [`FuzzOptions::hybrid`] are ignored here).
pub fn run_mips(opts: &FuzzOptions) -> FuzzReport {
    let mut lines = vec![format!(
        "codense fuzz: isa=mips cases={} seed={:#x} max-steps={}",
        opts.cases, opts.seed, opts.max_steps
    )];
    let (smoke_line, mut failures) = {
        let _phase = telemetry::phase("fuzz-self-test");
        mips_smoke(opts.max_steps)
    };
    lines.push(smoke_line);

    let cases_phase = telemetry::phase("fuzz-cases");
    let outcomes = par_map((0..opts.cases).collect(), |_, case| run_mips_case(opts, case));
    drop(cases_phase);

    let mut completed = [0u64; 4];
    let mut skipped = [0u64; 4];
    let mut agreed_faults = 0u64;
    let mut failure_lines = Vec::new();
    for out in outcomes {
        for e in 0..4 {
            completed[e] += out.completed[e];
            skipped[e] += out.skipped[e];
        }
        agreed_faults += out.agreed_faults;
        failure_lines.extend(out.failures);
    }
    failures += failure_lines.len();

    let labels = encodings().map(|(l, _)| l);
    for e in 0..4 {
        lines.push(format!(
            "encoding {}: completed={} skipped-overflow={}",
            labels[e], completed[e], skipped[e]
        ));
    }
    lines.push(format!("agreed-faults={agreed_faults}"));
    lines.extend(failure_lines);
    lines.push(if failures == 0 {
        format!("result: OK ({} cases, 0 divergences, 0 panics)", opts.cases)
    } else {
        format!("result: FAIL ({failures} failures over {} cases)", opts.cases)
    });
    FuzzReport { lines, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate_mips(&mut Rng::new(42), &cfg).unwrap();
        let b = generate_mips(&mut Rng::new(42), &cfg).unwrap();
        assert_eq!(a.module.code, b.module.code);
        let c = generate_mips(&mut Rng::new(43), &cfg).unwrap();
        assert_ne!(a.module.code, c.module.code);
    }

    #[test]
    fn generated_programs_validate() {
        let cfg = GenConfig::default();
        for seed in 0..40 {
            let p = generate_mips(&mut Rng::new(seed), &cfg)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(p.module.validate_with(IsaRef(&codense_mips::ISA)).is_ok(), "seed {seed}");
            assert!(!p.module.code.is_empty());
        }
    }

    #[test]
    fn tiny_mips_campaign_is_clean_and_deterministic() {
        let opts = FuzzOptions { cases: 6, seed: 7, ..FuzzOptions::default() };
        let a = run_mips(&opts);
        assert!(a.ok(), "campaign failed:\n{}", a.render());
        let b = run_mips(&opts);
        assert_eq!(a.lines, b.lines);
    }

    #[test]
    fn smoke_program_exercises_the_dictionary() {
        let (line, failures) = mips_smoke(1 << 20);
        assert_eq!(failures, 0, "{line}");
    }

    #[test]
    fn lockstep_catches_a_corrupt_dictionary() {
        // The oracle must not be vacuous: corrupting the hottest dictionary
        // entry of the smoke program must produce a divergence for at least
        // one entry.
        let mut rng = Rng::new(0x4B1D_C005);
        let program = generate_mips(&mut rng, &GenConfig::default()).unwrap();
        let compressed = Compressor::new(CompressionConfig::nibble_aligned())
            .with_isa(IsaRef(&codense_mips::ISA))
            .compress(&program.module)
            .unwrap();
        let mask = mips_mask(&program);
        let caught = (0..compressed.dictionary.len()).any(|rank| {
            let mut image = compressed.to_image();
            image.dictionary_by_rank[rank][0] ^= 1 << 21;
            let fetcher = CompressedFetcher::from_image_with(&image, IsaRef(&codense_mips::ISA));
            lockstep_mips_with(
                fetcher,
                &program.module,
                &compressed,
                &program.table_addrs,
                &mask,
                MEM_BYTES,
                1 << 20,
            )
            .is_err()
        });
        assert!(caught, "no dictionary corruption was ever detected");
    }
}
