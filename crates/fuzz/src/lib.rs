//! Differential-execution fuzzing and fault injection for the compressed-
//! program pipeline.
//!
//! The paper's central claim is behavioral: a compressed program, fetched
//! through the modified front end of Fig 3, is *indistinguishable* from the
//! original at the architecture level. The unit tests check that claim on a
//! dozen hand-written kernels; this crate checks it on unbounded random
//! programs, and checks the converse too — when the compressed artifact
//! *is* corrupted, every decoder path must fail with a typed error, never a
//! panic, hang, or out-of-bounds read.
//!
//! The pieces:
//!
//! - [`spec`]/[`gen`] — a seeded generator of structured, terminating
//!   programs over the supported PowerPC subset: multi-block control flow,
//!   forward and backward branches, calls, stack frames, and jump-table
//!   dispatches through `.data`.
//! - [`oracle`] — the lockstep differential oracle: native fetch vs.
//!   compressed fetch under each codeword encoding, comparing the full
//!   architectural trace step by step.
//! - [`faults`] — corruption batteries over the `.cdns`/`.cdm` binary
//!   formats and raw nibble soup, asserting the no-panic decoder policy.
//! - [`shrink`] — spec-level test-case minimization: every candidate is a
//!   well-formed terminating program by construction.
//! - [`runner`] — the campaign driver behind `codense fuzz`: per-case seed
//!   derivation, parallel execution, shrinking, deterministic reporting.
//! - [`mips`] — the cross-ISA battery: the same generator/oracle/campaign
//!   structure ported to the MIPS backend, sharing the campaign seed
//!   stream so `--isa ppc` and `--isa mips` fuzz the same case seeds.
//!
//! Reproducing a failure is always `seed → program`: the report prints the
//! derived case seed, and `runner` rebuilds the identical case from it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod faults;
pub mod gen;
pub mod mips;
pub mod oracle;
pub mod runner;
pub mod shrink;
pub mod spec;

pub use faults::{container_battery, corrupt, module_battery, nibble_soup_battery, FaultReport};
pub use gen::{generate_spec, GenConfig};
pub use mips::{generate_mips, lockstep_mips, lockstep_mips_with, run_mips, MipsProgram};
pub use oracle::{lockstep, lockstep_with, Divergence, DivergenceKind, LockstepOk, TraceMask};
pub use runner::{run, FuzzOptions, FuzzReport};
pub use shrink::shrink;
pub use spec::{build, BuildError, BuiltProgram, FuncSpec, Node, ProgramSpec};
