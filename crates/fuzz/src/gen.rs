//! Seeded random generation of [`ProgramSpec`]s.
//!
//! Programs are built from a per-case instruction *vocabulary*: a small pool
//! of concrete instructions the generator mostly draws from, so repeated
//! sequences exist for the dictionary compressor to find (a uniformly random
//! instruction stream would compress to nothing and leave the codeword paths
//! untested). Register discipline keeps the program comparable between the
//! native and compressed fetch domains: only `r11`, LR and CTR ever hold
//! code addresses, everything else is plain data identical in both runs.

use codense_codegen::Rng;
use codense_ppc::insn::{bo, Insn};
use codense_ppc::reg::{CrField, Gpr, R10, R14, R15, R16, R17, R18, R3, R4, R5, R6, R7, R8};

use crate::spec::{FuncSpec, Node, ProgramSpec, DATA_MASK};

/// Registers the generator may read or write in straight-line code.
pub const DATA_REGS: [Gpr; 10] = [R3, R4, R5, R6, R7, R14, R15, R16, R17, R18];

/// Size knobs for generated programs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum functions (≥ 1; function 0 is the entry).
    pub max_funcs: usize,
    /// Maximum top-level regions per function body.
    pub max_regions: usize,
    /// Maximum straight-line instructions per block.
    pub max_block: usize,
    /// Maximum loop nesting depth (≤ 3).
    pub max_loop_depth: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { max_funcs: 4, max_regions: 5, max_block: 8, max_loop_depth: 2 }
    }
}

struct Gen<'a> {
    rng: &'a mut Rng,
    cfg: GenConfig,
    vocab: Vec<Insn>,
}

impl Gen<'_> {
    fn data_reg(&mut self) -> Gpr {
        *self.rng.pick(&DATA_REGS)
    }

    fn cr_field(&mut self) -> CrField {
        CrField::new(self.rng.below(8) as u8).expect("0..8 is a CR field")
    }

    /// One fresh straight-line instruction over the data registers. Memory
    /// accesses stay inside the scratch region: displacement forms use a
    /// bounded positive offset from the data base `r10`, indexed forms mask
    /// the index register first (emitted as an extra instruction by
    /// [`Gen::straight_ops`]).
    fn fresh_op(&mut self) -> Insn {
        let rt = self.data_reg();
        let ra = self.data_reg();
        let rb = self.data_reg();
        let si = self.rng.next_u64() as i16;
        let ui = self.rng.next_u64() as u16;
        let rc = self.rng.chance(0.25);
        let d = (self.rng.below(0x7FF8) & !3) as i16;
        let sh = self.rng.below(32) as u8;
        let bf = self.cr_field();
        match self.rng.weighted(&[
            18, // D-form arithmetic
            10, // D-form logical
            6,  // compares
            8,  // loads
            6,  // stores
            14, // XO-form arithmetic
            10, // X-form logical / shifts
            6,  // rotates
            3,  // CR ops
        ]) {
            0 => match self.rng.below(6) {
                0 => Insn::Addi { rt, ra, si },
                1 => Insn::Addis { rt, ra, si },
                2 => Insn::Addic { rt, ra, si },
                3 => Insn::AddicRc { rt, ra, si },
                4 => Insn::Subfic { rt, ra, si },
                _ => Insn::Mulli { rt, ra, si },
            },
            1 => match self.rng.below(6) {
                0 => Insn::Ori { ra, rs: rt, ui },
                1 => Insn::Oris { ra, rs: rt, ui },
                2 => Insn::Xori { ra, rs: rt, ui },
                3 => Insn::Xoris { ra, rs: rt, ui },
                4 => Insn::AndiRc { ra, rs: rt, ui },
                _ => Insn::AndisRc { ra, rs: rt, ui },
            },
            2 => match self.rng.below(4) {
                0 => Insn::Cmpwi { bf, ra, si },
                1 => Insn::Cmplwi { bf, ra, ui },
                2 => Insn::Cmpw { bf, ra, rb },
                _ => Insn::Cmplw { bf, ra, rb },
            },
            3 => match self.rng.below(5) {
                0 => Insn::Lwz { rt, ra: R10, d },
                1 => Insn::Lbz { rt, ra: R10, d },
                2 => Insn::Lhz { rt, ra: R10, d },
                3 => Insn::Lha { rt, ra: R10, d },
                _ => Insn::Lwz { rt, ra: R10, d },
            },
            4 => match self.rng.below(3) {
                0 => Insn::Stw { rs: rt, ra: R10, d },
                1 => Insn::Stb { rs: rt, ra: R10, d },
                _ => Insn::Sth { rs: rt, ra: R10, d },
            },
            5 => match self.rng.below(7) {
                0 => Insn::Add { rt, ra, rb, rc },
                1 => Insn::Subf { rt, ra, rb, rc },
                2 => Insn::Mullw { rt, ra, rb, rc },
                3 => Insn::Mulhw { rt, ra, rb, rc },
                4 => Insn::Divw { rt, ra, rb, rc },
                5 => Insn::Divwu { rt, ra, rb, rc },
                _ => Insn::Neg { rt, ra, rc },
            },
            6 => match self.rng.below(10) {
                0 => Insn::And { ra, rs: rt, rb, rc },
                1 => Insn::Or { ra, rs: rt, rb, rc },
                2 => Insn::Xor { ra, rs: rt, rb, rc },
                3 => Insn::Nand { ra, rs: rt, rb, rc },
                4 => Insn::Nor { ra, rs: rt, rb, rc },
                5 => Insn::Slw { ra, rs: rt, rb, rc },
                6 => Insn::Srw { ra, rs: rt, rb, rc },
                7 => Insn::Sraw { ra, rs: rt, rb, rc },
                8 => Insn::Srawi { ra, rs: rt, sh, rc },
                _ => Insn::Cntlzw { ra, rs: rt, rc },
            },
            7 => {
                let mb = self.rng.below(32) as u8;
                let me = self.rng.below(32) as u8;
                if self.rng.chance(0.5) {
                    Insn::Rlwinm { ra, rs: rt, sh, mb, me, rc }
                } else {
                    Insn::Rlwimi { ra, rs: rt, sh, mb, me, rc }
                }
            }
            _ => match self.rng.below(3) {
                0 => Insn::Crxor {
                    bt: self.rng.below(32) as u8,
                    ba: self.rng.below(32) as u8,
                    bb: self.rng.below(32) as u8,
                },
                1 => Insn::Mfcr { rt },
                _ => Insn::Extsh { ra, rs: rt, rc },
            },
        }
    }

    /// A run of straight-line instructions, drawn mostly from the
    /// vocabulary. Occasionally emits a masked indexed access pair.
    fn straight_ops(&mut self) -> Vec<Insn> {
        let n = self.rng.range(1, self.cfg.max_block);
        let mut ops = Vec::with_capacity(n + 2);
        for _ in 0..n {
            if self.rng.chance(0.12) {
                // Indexed access with a bounds-masked offset register.
                let src = self.data_reg();
                let val = self.data_reg();
                ops.push(Insn::AndiRc { ra: R8, rs: src, ui: DATA_MASK });
                ops.push(if self.rng.chance(0.5) {
                    Insn::Lwzx { rt: val, ra: R10, rb: R8 }
                } else {
                    Insn::Stwx { rs: val, ra: R10, rb: R8 }
                });
            } else if !self.vocab.is_empty() && self.rng.chance(0.8) {
                ops.push(*self.rng.pick(&self.vocab));
            } else {
                let op = self.fresh_op();
                self.vocab.push(op);
                ops.push(op);
            }
        }
        ops
    }

    fn region(&mut self, depth: usize, may_call: bool, funcs: usize) -> Node {
        let choices: &[u32] = &[
            40,                                                   // straight
            if depth < self.cfg.max_loop_depth { 14 } else { 0 }, // loop
            12,                                                   // if
            if depth == 0 { 6 } else { 0 },                       // dispatch
            if may_call && funcs > 1 { 8 } else { 0 },            // call
        ];
        match self.rng.weighted(choices) {
            0 => Node::Straight(self.straight_ops()),
            1 => {
                let trips = self.rng.range(1, 6) as u8;
                let body = self.body(depth + 1, may_call, funcs, 2);
                Node::Loop { trips, body }
            }
            2 => {
                let bf = self.cr_field();
                let reg = self.data_reg();
                let cmp = if self.rng.chance(0.5) {
                    Insn::Cmpwi { bf, ra: reg, si: self.rng.next_u64() as i16 }
                } else {
                    Insn::Cmplwi { bf, ra: reg, ui: self.rng.next_u64() as u16 }
                };
                let bit = match self.rng.below(3) {
                    0 => bf.lt_bit(),
                    1 => bf.gt_bit(),
                    _ => bf.eq_bit(),
                };
                let skip_bo = if self.rng.chance(0.5) { bo::IF_TRUE } else { bo::IF_FALSE };
                let then = self.body(depth, may_call, funcs, 2);
                Node::If { cmp, skip_bo, skip_bi: bit, then }
            }
            3 => {
                let width = 1 << self.rng.range(1, 3); // 2, 4 or 8 arms
                let arms = (0..width).map(|_| self.body(depth + 1, may_call, funcs, 1)).collect();
                Node::Dispatch { index: self.data_reg(), arms }
            }
            _ => Node::Call(self.rng.range(1, funcs - 1)),
        }
    }

    fn body(
        &mut self,
        depth: usize,
        may_call: bool,
        funcs: usize,
        max_regions: usize,
    ) -> Vec<Node> {
        let n = self.rng.range(1, max_regions.max(1));
        (0..n).map(|_| self.region(depth, may_call, funcs)).collect()
    }
}

/// Generates a program spec from the RNG stream.
pub fn generate_spec(rng: &mut Rng, cfg: &GenConfig) -> ProgramSpec {
    let funcs_n = rng.range(1, cfg.max_funcs.max(1));
    let mut g = Gen { rng, cfg: cfg.clone(), vocab: Vec::new() };

    let reg_init: Vec<(Gpr, u32)> = DATA_REGS
        .iter()
        .filter(|_| g.rng.chance(0.7))
        .copied()
        .collect::<Vec<_>>()
        .into_iter()
        .map(|r| (r, g.rng.next_u64() as u32))
        .collect();

    let mut funcs = Vec::with_capacity(funcs_n);
    for fi in 0..funcs_n {
        let may_call = fi == 0;
        // Callees draw loop counters from the upper half of the reserved
        // bank (see `spec::CALLEE_LOOP_BASE`), so their nesting budget is
        // half the entry function's.
        g.cfg.max_loop_depth = if fi == 0 {
            cfg.max_loop_depth.min(crate::spec::LOOP_REGS.len())
        } else {
            cfg.max_loop_depth.min(crate::spec::LOOP_REGS.len() - crate::spec::CALLEE_LOOP_BASE)
        };
        let regions = g.rng.range(1, g.cfg.max_regions);
        let body = (0..regions).map(|_| g.region(0, may_call, funcs_n)).collect();
        funcs.push(FuncSpec { frame: fi != 0 && g.rng.chance(0.6), body });
    }
    let result_reg = *g.rng.pick(&DATA_REGS);
    ProgramSpec { funcs, reg_init, result_reg }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::build;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate_spec(&mut Rng::new(42), &cfg);
        let b = generate_spec(&mut Rng::new(42), &cfg);
        assert_eq!(a, b);
        let c = generate_spec(&mut Rng::new(43), &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_specs_build_and_validate() {
        let cfg = GenConfig::default();
        for seed in 0..60 {
            let spec = generate_spec(&mut Rng::new(seed), &cfg);
            let built = build(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(built.module.validate().is_ok(), "seed {seed}");
            assert!(!built.module.code.is_empty());
        }
    }
}
