//! The structured program representation the fuzzer generates and shrinks.
//!
//! A [`ProgramSpec`] is a tree of control-flow regions over concrete
//! instructions. The tree shape guarantees termination by construction:
//! every branch is forward except loop back-edges, and every loop decrements
//! a dedicated counter register initialized immediately before the loop
//! head, so a built program always reaches its final `sc` within a bounded
//! step count. [`build`] lowers the tree through the label-resolving
//! assembler into a valid [`ObjectModule`] with function metadata and
//! jump tables, ready for the compressor.
//!
//! Keeping the *spec* (rather than a raw seed or instruction list) as the
//! unit of shrinking means every shrink candidate is a well-formed,
//! terminating program — the minimizer never has to reason about dangling
//! branches.

use codense_obj::{FunctionInfo, JumpTable, ObjectModule};
use codense_ppc::asm::Assembler;
use codense_ppc::insn::{bo, Insn};
use codense_ppc::reg::{Gpr, CR0, R0, R1, R10, R11, R24, R25, R26, R27, R29, R3};

/// Data-memory size the differential oracle instantiates (1 MiB).
pub const MEM_BYTES: usize = 1 << 20;
/// Base of the scratch read/write data region generated code addresses.
pub const DATA_BASE: u32 = 0x0004_0000;
/// Mask applied to indexed-access offsets (keeps EAs inside the scratch
/// region, word-aligned).
pub const DATA_MASK: u16 = 0x7FFC;
/// Base address where the oracle materializes jump tables in data memory.
pub const JT_BASE: u32 = 0x0008_0000;

/// Loop counter registers by nesting depth (reserved: never written by
/// straight-line ops). The entry function indexes from 0, callees from
/// [`CALLEE_LOOP_BASE`], so a callee's loops can never clobber a counter of
/// the loop its call site sits in.
pub const LOOP_REGS: [Gpr; 4] = [R24, R25, R26, R27];

/// First [`LOOP_REGS`] index available to non-entry functions.
pub const CALLEE_LOOP_BASE: usize = 2;

/// One region of a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Straight-line instructions (no control flow).
    Straight(Vec<Insn>),
    /// `bl` to the function with this index (call depth is 1: only the
    /// entry function calls, callees are leaves).
    Call(usize),
    /// A counted loop: the body repeats `trips` times via a dedicated
    /// counter register chosen by nesting depth.
    Loop {
        /// Iteration count (≥ 1).
        trips: u8,
        /// Loop body.
        body: Vec<Node>,
    },
    /// A forward conditional region: `cmp` sets a CR field, then a `bc`
    /// with the given BO/BI skips over `then` when taken.
    If {
        /// The compare instruction establishing the condition.
        cmp: Insn,
        /// BO field of the skipping branch.
        skip_bo: u8,
        /// BI field of the skipping branch.
        skip_bi: u8,
        /// Region executed when the skip branch falls through.
        then: Vec<Node>,
    },
    /// A jump-table dispatch: the index register is masked to the table
    /// size (a power of two), the table entry is loaded from data memory
    /// into CTR, and `bctr` selects one arm. Every arm jumps forward to a
    /// common join point.
    Dispatch {
        /// Register supplying the (unmasked) case index.
        index: Gpr,
        /// One region per table entry; `arms.len()` is a power of two.
        arms: Vec<Vec<Node>>,
    },
}

/// One function of the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSpec {
    /// Whether to emit a stack-frame prologue/epilogue (`stwu`/`stmw` …
    /// `lmw`/`addi`), exercising the paper's prologue/epilogue patterns.
    pub frame: bool,
    /// Body regions, executed in order.
    pub body: Vec<Node>,
}

/// A whole generated program. Function 0 is the entry; it ends in `sc` with
/// the exit code taken from `result_reg`. All other functions are leaves
/// ending in `blr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Functions; index 0 is the entry point.
    pub funcs: Vec<FuncSpec>,
    /// Initial register values, materialized as `lis`/`ori` pairs in the
    /// entry preamble.
    pub reg_init: Vec<(Gpr, u32)>,
    /// Register whose value becomes the exit code.
    pub result_reg: Gpr,
}

impl ProgramSpec {
    /// Total instruction-ish size (used to report shrink progress).
    pub fn weight(&self) -> usize {
        fn nodes(v: &[Node]) -> usize {
            v.iter()
                .map(|n| match n {
                    Node::Straight(ops) => ops.len(),
                    Node::Call(_) => 1,
                    Node::Loop { body, .. } => 2 + nodes(body),
                    Node::If { then, .. } => 2 + nodes(then),
                    Node::Dispatch { arms, .. } => {
                        7 + arms.iter().map(|a| 1 + nodes(a)).sum::<usize>()
                    }
                })
                .sum()
        }
        self.funcs.iter().map(|f| nodes(&f.body) + if f.frame { 5 } else { 1 }).sum::<usize>()
            + 2 * self.reg_init.len()
    }
}

/// A built program: the module plus the memory addresses where the oracle
/// must materialize each jump table.
#[derive(Debug, Clone)]
pub struct BuiltProgram {
    /// The assembled, validated module.
    pub module: ObjectModule,
    /// Data-memory address of each `module.jump_tables[t]`.
    pub table_addrs: Vec<u32>,
}

/// Errors lowering a spec to a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The assembler rejected the program (branch out of range, …).
    Asm(String),
    /// The finished module failed [`ObjectModule::validate`].
    Module(String),
    /// The spec violates a structural invariant (bad callee index, loop
    /// nesting too deep, non-power-of-two dispatch width).
    Structure(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Asm(e) => write!(f, "assembly failed: {e}"),
            BuildError::Module(e) => write!(f, "invalid module: {e}"),
            BuildError::Structure(e) => write!(f, "malformed spec: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

struct Lowering<'a> {
    a: &'a mut Assembler,
    /// Per-table list of arm-entry label names; resolved to instruction
    /// indices after emission.
    tables: Vec<Vec<String>>,
    next_label: usize,
    /// Index into [`LOOP_REGS`] for depth-0 loops of the current function.
    loop_base: usize,
}

impl Lowering<'_> {
    fn fresh(&mut self, what: &str) -> String {
        self.next_label += 1;
        format!("{}_{}", what, self.next_label)
    }

    fn emit_body(&mut self, nodes: &[Node], depth: usize) -> Result<(), BuildError> {
        for node in nodes {
            match node {
                Node::Straight(ops) => {
                    for &op in ops {
                        self.a.emit(op);
                    }
                }
                Node::Call(callee) => {
                    self.a.bl(&format!("fn_{callee}"));
                }
                Node::Loop { trips, body } => {
                    if self.loop_base + depth >= LOOP_REGS.len() {
                        return Err(BuildError::Structure("loop nesting too deep".into()));
                    }
                    let counter = LOOP_REGS[self.loop_base + depth];
                    let head = self.fresh("loop");
                    self.a.emit(Insn::Addi { rt: counter, ra: R0, si: (*trips).max(1) as i16 });
                    self.a.label(&head);
                    self.emit_body(body, depth + 1)?;
                    self.a.emit(Insn::AddicRc { rt: counter, ra: counter, si: -1 });
                    self.a.bc(bo::IF_FALSE, CR0.eq_bit(), &head);
                }
                Node::If { cmp, skip_bo, skip_bi, then } => {
                    let join = self.fresh("join");
                    self.a.emit(*cmp);
                    self.a.bc(*skip_bo, *skip_bi, &join);
                    self.emit_body(then, depth)?;
                    self.a.label(&join);
                }
                Node::Dispatch { index, arms } => {
                    if !arms.len().is_power_of_two() || arms.is_empty() {
                        return Err(BuildError::Structure(
                            "dispatch width must be a power of two".into(),
                        ));
                    }
                    let table_no = self.tables.len();
                    let addr = table_address(&self.tables);
                    // Mask the index to the table, scale by entry size, load
                    // the patched target into CTR, dispatch.
                    self.a.emit(Insn::AndiRc { ra: R11, rs: *index, ui: (arms.len() - 1) as u16 });
                    self.a.emit(Insn::Rlwinm { ra: R11, rs: R11, sh: 2, mb: 0, me: 29, rc: false });
                    self.a.emit(Insn::Addis { rt: R10, ra: R0, si: (addr >> 16) as i16 });
                    self.a.emit(Insn::Ori { ra: R10, rs: R10, ui: (addr & 0xFFFF) as u16 });
                    self.a.emit(Insn::Lwzx { rt: R11, ra: R10, rb: R11 });
                    self.a.emit(Insn::Mtspr { spr: codense_ppc::reg::Spr::Ctr, rs: R11 });
                    self.a.emit(Insn::Bcctr { bo: bo::ALWAYS, bi: 0, lk: false });
                    // Restore the data base pointer clobbered by the address
                    // materialization, once per arm (each arm is an entry
                    // point, so each must restore it).
                    let join = self.fresh("join");
                    let mut entries = Vec::with_capacity(arms.len());
                    for arm in arms {
                        let entry = self.fresh("arm");
                        entries.push(entry.clone());
                        self.a.label(&entry);
                        self.a.emit(Insn::Addis { rt: R10, ra: R0, si: (DATA_BASE >> 16) as i16 });
                        self.emit_body(arm, depth)?;
                        self.a.b(&join);
                    }
                    self.a.label(&join);
                    self.tables.push(entries);
                    let _ = table_no;
                }
            }
        }
        Ok(())
    }
}

/// Address of the next table given the tables allocated so far.
fn table_address(tables: &[Vec<String>]) -> u32 {
    JT_BASE + 4 * tables.iter().map(|t| t.len() as u32).sum::<u32>()
}

/// Lowers a spec into a runnable, validated module.
///
/// # Errors
///
/// Returns a [`BuildError`] if the spec violates a structural invariant or
/// produces an out-of-range branch.
pub fn build(spec: &ProgramSpec) -> Result<BuiltProgram, BuildError> {
    for func in &spec.funcs {
        check_calls(&func.body, spec.funcs.len())?;
    }
    let mut a = Assembler::new();
    let mut lower = Lowering { a: &mut a, tables: Vec::new(), next_label: 0, loop_base: 0 };
    let mut functions: Vec<FunctionInfo> = Vec::new();

    for (fi, func) in spec.funcs.iter().enumerate() {
        lower.loop_base = if fi == 0 { 0 } else { CALLEE_LOOP_BASE };
        let start = lower.a.here();
        lower.a.label(&format!("fn_{fi}"));
        let mut prologue_len = 0;
        if fi == 0 {
            // Entry preamble: data base pointer and initial register values.
            lower.a.emit(Insn::Addis { rt: R10, ra: R0, si: (DATA_BASE >> 16) as i16 });
            for &(reg, value) in &spec.reg_init {
                lower.a.emit(Insn::Addis { rt: reg, ra: R0, si: (value >> 16) as i16 });
                lower.a.emit(Insn::Ori { ra: reg, rs: reg, ui: (value & 0xFFFF) as u16 });
            }
            prologue_len = lower.a.here() - start;
        } else if func.frame {
            lower.a.emit(Insn::Stwu { rs: R1, ra: R1, d: -32 });
            lower.a.emit(Insn::Stmw { rs: R29, ra: R1, d: 8 });
            prologue_len = 2;
        }
        lower.emit_body(&func.body, 0)?;
        let epi_start = lower.a.here();
        if fi == 0 {
            lower.a.emit(Insn::Or { ra: R3, rs: spec.result_reg, rb: spec.result_reg, rc: false });
            lower.a.emit(Insn::Sc);
        } else {
            if func.frame {
                lower.a.emit(Insn::Lmw { rt: R29, ra: R1, d: 8 });
                lower.a.emit(Insn::Addi { rt: R1, ra: R1, si: 32 });
            }
            lower.a.blr();
        }
        let end = lower.a.here();
        functions.push(FunctionInfo {
            name: format!("fn_{fi}"),
            start,
            end,
            prologue_len,
            epilogues: std::iter::once(epi_start..end).collect(),
        });
    }

    // Resolve jump-table entry labels to instruction indices.
    let mut jump_tables = Vec::with_capacity(lower.tables.len());
    let mut table_addrs = Vec::with_capacity(lower.tables.len());
    let mut next_addr = JT_BASE;
    for labels in &lower.tables {
        let targets: Vec<usize> =
            labels.iter().map(|l| lower.a.label_pos(l).expect("arm label defined")).collect();
        table_addrs.push(next_addr);
        next_addr += 4 * targets.len() as u32;
        jump_tables.push(JumpTable { targets });
    }

    let code = a.finish().map_err(|e| BuildError::Asm(e.to_string()))?;
    let mut module = ObjectModule::new("fuzz");
    module.code = code;
    module.functions = functions;
    module.jump_tables = jump_tables;
    module.validate().map_err(|e| BuildError::Module(e.to_string()))?;
    Ok(BuiltProgram { module, table_addrs })
}

fn check_calls(nodes: &[Node], funcs: usize) -> Result<(), BuildError> {
    for node in nodes {
        match node {
            Node::Call(c) if *c == 0 || *c >= funcs => {
                return Err(BuildError::Structure(format!("bad callee index {c}")));
            }
            Node::Loop { body, .. } => check_calls(body, funcs)?,
            Node::If { then, .. } => check_calls(then, funcs)?,
            Node::Dispatch { arms, .. } => {
                for arm in arms {
                    check_calls(arm, funcs)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_ppc::reg::{R4, R5};

    fn tiny_spec() -> ProgramSpec {
        ProgramSpec {
            funcs: vec![FuncSpec {
                frame: false,
                body: vec![
                    Node::Straight(vec![Insn::Addi { rt: R4, ra: R0, si: 7 }]),
                    Node::Loop {
                        trips: 3,
                        body: vec![Node::Straight(vec![Insn::Addi { rt: R5, ra: R5, si: 1 }])],
                    },
                ],
            }],
            reg_init: vec![(R5, 0x10)],
            result_reg: R5,
        }
    }

    #[test]
    fn tiny_spec_builds_and_validates() {
        let built = build(&tiny_spec()).unwrap();
        assert!(built.module.validate().is_ok());
        assert_eq!(built.module.functions.len(), 1);
        assert!(built.module.code.len() >= 8);
    }

    #[test]
    fn dispatch_allocates_tables() {
        let spec = ProgramSpec {
            funcs: vec![FuncSpec {
                frame: false,
                body: vec![Node::Dispatch {
                    index: R4,
                    arms: vec![
                        vec![Node::Straight(vec![Insn::Addi { rt: R5, ra: R5, si: 1 }])],
                        vec![Node::Straight(vec![Insn::Addi { rt: R5, ra: R5, si: 2 }])],
                    ],
                }],
            }],
            reg_init: vec![(R4, 1)],
            result_reg: R5,
        };
        let built = build(&spec).unwrap();
        assert_eq!(built.module.jump_tables.len(), 1);
        assert_eq!(built.module.jump_tables[0].targets.len(), 2);
        assert_eq!(built.table_addrs, vec![JT_BASE]);
    }

    #[test]
    fn bad_callee_rejected() {
        let mut spec = tiny_spec();
        spec.funcs[0].body.push(Node::Call(9));
        assert!(matches!(build(&spec), Err(BuildError::Structure(_))));
    }
}
