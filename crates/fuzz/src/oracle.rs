//! The differential-execution oracle.
//!
//! Runs one program twice in lockstep — once through the native
//! [`LinearFetcher`], once through the [`CompressedFetcher`] — and compares
//! the *full architectural trace*, not just the final state: every step
//! checks the compressed PC against the atom map, the fetched instruction
//! (normalized for branch-offset patching), every unmasked GPR, CR, CA, and
//! the control-flow outcome kind. Memory is compared at halt. LR and CTR are
//! never compared directly: they hold fetch-domain addresses, which are
//! *supposed* to differ between the two machines; their effects are still
//! checked because calls, returns, and table dispatches land on atoms the
//! PC check validates.

use codense_core::CompressedProgram;
use codense_obj::ObjectModule;
use codense_ppc::insn::Insn;
use codense_vm::fetch::{CompressedFetcher, Fetch, LinearFetcher};
use codense_vm::machine::{Machine, MachineError, Outcome};

/// What a lockstep comparison ignores.
#[derive(Debug, Clone, Default)]
pub struct TraceMask {
    /// Bitmask of GPR numbers excluded from per-step comparison (bit *r*
    /// set ⇒ `gpr[r]` ignored). Use for registers that legitimately hold
    /// fetch-domain addresses (e.g. `r11` in jump-table dispatch sequences,
    /// `r0` in kernels that spill LR through it).
    pub skip_gprs: u32,
    /// Byte ranges excluded from the final memory comparison (e.g. stack
    /// slots holding spilled LR values, or the jump-table region, whose
    /// entries are domain-specific by construction).
    pub mem_skip: Vec<std::ops::Range<usize>>,
}

impl TraceMask {
    /// Mask excluding a set of GPR numbers.
    pub fn skipping_gprs(regs: &[u8]) -> TraceMask {
        TraceMask { skip_gprs: regs.iter().fold(0u32, |m, &r| m | 1 << r), mem_skip: Vec::new() }
    }
}

/// How a divergence manifested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The compressed PC was not the atom address the native PC maps to.
    PcMismatch,
    /// The two fetchers delivered different instructions.
    InsnMismatch,
    /// A compared GPR differed after the step.
    RegMismatch,
    /// CR differed after the step.
    CrMismatch,
    /// CA differed after the step.
    CaMismatch,
    /// One run fell through where the other branched or halted.
    OutcomeMismatch,
    /// One run faulted and the other did not, or the fault kinds differed.
    ErrorMismatch,
    /// Both halted but with different exit codes.
    ExitMismatch,
    /// Final data memory differed outside the masked ranges.
    MemMismatch,
    /// The step budget ran out before either run halted or faulted.
    StepLimit,
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DivergenceKind::PcMismatch => "pc-mismatch",
            DivergenceKind::InsnMismatch => "insn-mismatch",
            DivergenceKind::RegMismatch => "reg-mismatch",
            DivergenceKind::CrMismatch => "cr-mismatch",
            DivergenceKind::CaMismatch => "ca-mismatch",
            DivergenceKind::OutcomeMismatch => "outcome-mismatch",
            DivergenceKind::ErrorMismatch => "error-mismatch",
            DivergenceKind::ExitMismatch => "exit-mismatch",
            DivergenceKind::MemMismatch => "mem-mismatch",
            DivergenceKind::StepLimit => "step-limit",
        };
        f.write_str(s)
    }
}

/// A trace divergence between the native and compressed runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Zero-based step index at which the traces diverged.
    pub step: u64,
    /// What diverged.
    pub kind: DivergenceKind,
    /// Human-readable specifics (register number, addresses, …).
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {}: {}: {}", self.step, self.kind, self.detail)
    }
}

/// A lockstep run that did *not* diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockstepOk {
    /// Both runs halted with the same exit code and memory.
    Completed {
        /// Instructions executed.
        steps: u64,
        /// Exit code (`r3` at `sc`).
        exit: u32,
    },
    /// Both runs faulted at the same step with the same fault kind (the
    /// traces agree — the program itself is faulty, not the pipeline).
    Faulted {
        /// Instructions executed before the fault.
        steps: u64,
        /// The shared fault kind.
        kind: &'static str,
    },
    /// The program needed overflow-branch rewriting (`ViaTable` atoms),
    /// whose dispatch stubs legitimately execute extra instructions and
    /// clobber `r12`/CTR; lockstep comparison does not apply.
    SkippedOverflow,
}

/// Stable name for a machine error, for cross-domain comparison (payloads
/// like addresses are domain-specific).
pub fn error_kind(e: &MachineError) -> &'static str {
    match e {
        MachineError::MemoryFault { .. } => "memory-fault",
        MachineError::FetchFault { .. } => "fetch-fault",
        MachineError::Trap => "trap",
        MachineError::IllegalInstruction { .. } => "illegal-instruction",
        MachineError::StepLimit => "step-limit",
    }
}

/// Instruction equality modulo branch-offset patching: the compressor
/// rewrites relative branch displacements into compressed-domain units, so
/// only the non-offset fields are comparable across domains.
fn same_insn(native: &Insn, comp: &Insn) -> bool {
    match (native, comp) {
        (Insn::B { aa: false, lk: a, .. }, Insn::B { aa: false, lk: b, .. }) => a == b,
        (
            Insn::Bc { bo: bo1, bi: bi1, aa: false, lk: lk1, .. },
            Insn::Bc { bo: bo2, bi: bi2, aa: false, lk: lk2, .. },
        ) => bo1 == bo2 && bi1 == bi2 && lk1 == lk2,
        _ => native == comp,
    }
}

fn outcome_kind(o: &Outcome) -> &'static str {
    match o {
        Outcome::Next => "next",
        Outcome::Branch(_) => "branch",
        Outcome::Halt => "halt",
    }
}

/// Materializes jump tables into data memory: instruction-index targets
/// become word addresses (`8 × index`) for the native machine and the
/// compressor-patched nibble addresses for the compressed machine.
fn seed_tables(
    native: &mut Machine,
    comp: &mut Machine,
    module: &ObjectModule,
    compressed: &CompressedProgram,
    table_addrs: &[u32],
) -> Result<(), String> {
    if module.jump_tables.len() != table_addrs.len()
        || compressed.jump_tables.len() != table_addrs.len()
    {
        return Err(format!(
            "table count mismatch: module {}, compressed {}, addrs {}",
            module.jump_tables.len(),
            compressed.jump_tables.len(),
            table_addrs.len()
        ));
    }
    for (t, table) in module.jump_tables.iter().enumerate() {
        for (e, &target) in table.targets.iter().enumerate() {
            let addr = table_addrs[t] + 4 * e as u32;
            native.store32(addr, 8 * target as u32).map_err(|err| format!("table seed: {err}"))?;
            comp.store32(addr, compressed.jump_tables[t][e] as u32)
                .map_err(|err| format!("table seed: {err}"))?;
        }
    }
    Ok(())
}

/// Runs the differential oracle with the default (faithful) compressed
/// fetcher. See [`lockstep_with`] for the full contract.
///
/// # Errors
///
/// Returns the first [`Divergence`] between the two traces.
pub fn lockstep(
    module: &ObjectModule,
    compressed: &CompressedProgram,
    table_addrs: &[u32],
    setup: &dyn Fn(&mut Machine),
    mask: &TraceMask,
    mem_bytes: usize,
    max_steps: u64,
) -> Result<LockstepOk, Divergence> {
    lockstep_with(
        CompressedFetcher::new(compressed),
        module,
        compressed,
        table_addrs,
        setup,
        mask,
        mem_bytes,
        max_steps,
    )
}

/// Runs the differential oracle with a caller-supplied compressed fetcher
/// (fault injection passes a deliberately corrupted one).
///
/// Both machines start from [`Machine::new`], get `setup` applied, and have
/// the module's jump tables materialized in data memory (domain-appropriate
/// entries on each side). Execution proceeds one instruction at a time on
/// both machines until halt, fault, divergence, or `max_steps`.
///
/// # Errors
///
/// Returns the first [`Divergence`] between the two traces. Exhausting
/// `max_steps` is reported as a [`DivergenceKind::StepLimit`] divergence:
/// generated programs terminate by construction, so a budget overrun means
/// one trace stopped making progress.
#[allow(clippy::too_many_arguments)]
pub fn lockstep_with(
    comp_fetch: CompressedFetcher,
    module: &ObjectModule,
    compressed: &CompressedProgram,
    table_addrs: &[u32],
    setup: &dyn Fn(&mut Machine),
    mask: &TraceMask,
    mem_bytes: usize,
    max_steps: u64,
) -> Result<LockstepOk, Divergence> {
    if !compressed.overflow_table.is_empty() {
        return Ok(LockstepOk::SkippedOverflow);
    }
    let mut comp_fetch = comp_fetch;
    let mut native_fetch = LinearFetcher::new(module.code.clone());
    let granule = comp_fetch.granule();

    // Atom map: expected compressed PC for each original instruction index.
    // Instructions inside a codeword share the codeword's address (the PC
    // parks there while the expansion buffer drains).
    let mut expected_pc = vec![u64::MAX; module.code.len()];
    for (i, atom) in compressed.atoms.iter().enumerate() {
        for k in 0..atom.covered() {
            if let Some(slot) = expected_pc.get_mut(atom.orig() + k) {
                *slot = compressed.addresses[i];
            }
        }
    }

    let mut native = Machine::new(mem_bytes);
    let mut comp = Machine::new(mem_bytes);
    setup(&mut native);
    setup(&mut comp);
    if let Err(detail) = seed_tables(&mut native, &mut comp, module, compressed, table_addrs) {
        return Err(Divergence { step: 0, kind: DivergenceKind::PcMismatch, detail });
    }

    let mut npc = 0u64;
    let mut cpc = compressed.address_of_orig(0).unwrap_or(0);

    for step in 0..max_steps {
        let diverge = |kind, detail| Err(Divergence { step, kind, detail });

        // PC correspondence (only checkable when the native PC is a valid
        // instruction address; otherwise both fetches fault below).
        if npc.is_multiple_of(8) {
            if let Some(&want) = expected_pc.get((npc / 8) as usize) {
                if want != u64::MAX && cpc != want {
                    return diverge(
                        DivergenceKind::PcMismatch,
                        format!(
                            "native pc {npc:#x} maps to atom {want:#x}, compressed pc {cpc:#x}"
                        ),
                    );
                }
            }
        }

        let (nf, cf) = match (native_fetch.fetch(npc), comp_fetch.fetch(cpc)) {
            (Err(ne), Err(ce)) => {
                let (nk, ck) = (error_kind(&ne), error_kind(&ce));
                if nk == ck {
                    return Ok(LockstepOk::Faulted { steps: step, kind: nk });
                }
                return diverge(
                    DivergenceKind::ErrorMismatch,
                    format!("native fetch {nk}, compressed fetch {ck}"),
                );
            }
            (Err(ne), Ok(_)) => {
                return diverge(
                    DivergenceKind::ErrorMismatch,
                    format!("native fetch faulted ({}) but compressed delivered", error_kind(&ne)),
                );
            }
            (Ok(_), Err(ce)) => {
                return diverge(
                    DivergenceKind::ErrorMismatch,
                    format!("compressed fetch faulted ({}) but native delivered", error_kind(&ce)),
                );
            }
            (Ok(nf), Ok(cf)) => (nf, cf),
        };

        let ni = codense_ppc::decode(nf.word);
        let ci = codense_ppc::decode(cf.word);
        if !same_insn(&ni, &ci) {
            return diverge(
                DivergenceKind::InsnMismatch,
                format!("native {ni:?} vs compressed {ci:?} at native pc {npc:#x}"),
            );
        }

        let no = native.step(&ni, npc, nf.next_pc, 8);
        let co = comp.step(&ci, cpc, cf.next_pc, granule);

        let (no, co) = match (no, co) {
            (Err(ne), Err(ce)) => {
                let (nk, ck) = (error_kind(&ne), error_kind(&ce));
                if nk == ck {
                    return Ok(LockstepOk::Faulted { steps: step + 1, kind: nk });
                }
                return diverge(
                    DivergenceKind::ErrorMismatch,
                    format!("native fault {nk}, compressed fault {ck}"),
                );
            }
            (Err(ne), Ok(_)) => {
                return diverge(
                    DivergenceKind::ErrorMismatch,
                    format!("only native faulted: {}", error_kind(&ne)),
                );
            }
            (Ok(_), Err(ce)) => {
                return diverge(
                    DivergenceKind::ErrorMismatch,
                    format!("only compressed faulted: {}", error_kind(&ce)),
                );
            }
            (Ok(no), Ok(co)) => (no, co),
        };

        // Architectural state after the step. LR/CTR are fetch-domain.
        for r in 0..32 {
            if mask.skip_gprs & (1 << r) == 0 && native.gpr[r] != comp.gpr[r] {
                return diverge(
                    DivergenceKind::RegMismatch,
                    format!(
                        "r{r}: native {:#010x}, compressed {:#010x} after {:?}",
                        native.gpr[r], comp.gpr[r], ni
                    ),
                );
            }
        }
        if native.cr != comp.cr {
            return diverge(
                DivergenceKind::CrMismatch,
                format!("cr: native {:#010x}, compressed {:#010x}", native.cr, comp.cr),
            );
        }
        if native.ca != comp.ca {
            return diverge(
                DivergenceKind::CaMismatch,
                format!("ca: native {}, compressed {}", native.ca, comp.ca),
            );
        }

        match (no, co) {
            (Outcome::Next, Outcome::Next) => {
                npc = nf.next_pc;
                cpc = cf.next_pc;
            }
            (Outcome::Branch(nt), Outcome::Branch(ct)) => {
                npc = nt;
                cpc = ct;
            }
            (Outcome::Halt, Outcome::Halt) => {
                if native.gpr[3] != comp.gpr[3] {
                    return diverge(
                        DivergenceKind::ExitMismatch,
                        format!("exit: native {}, compressed {}", native.gpr[3], comp.gpr[3]),
                    );
                }
                if let Some(addr) = first_mem_difference(&native, &comp, mask) {
                    return diverge(
                        DivergenceKind::MemMismatch,
                        format!(
                            "mem[{addr:#x}]: native {:#04x}, compressed {:#04x}",
                            native.mem[addr], comp.mem[addr]
                        ),
                    );
                }
                return Ok(LockstepOk::Completed { steps: step + 1, exit: native.gpr[3] });
            }
            (a, b) => {
                return diverge(
                    DivergenceKind::OutcomeMismatch,
                    format!("native {}, compressed {}", outcome_kind(&a), outcome_kind(&b)),
                );
            }
        }
    }
    Err(Divergence {
        step: max_steps,
        kind: DivergenceKind::StepLimit,
        detail: format!("no halt within {max_steps} steps"),
    })
}

fn first_mem_difference(native: &Machine, comp: &Machine, mask: &TraceMask) -> Option<usize> {
    let skipped = |addr: usize| mask.mem_skip.iter().any(|r| r.contains(&addr));
    native
        .mem
        .iter()
        .zip(&comp.mem)
        .enumerate()
        .find(|&(addr, (a, b))| a != b && !skipped(addr))
        .map(|(addr, _)| addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_core::{CompressionConfig, Compressor};
    use codense_ppc::encode;
    use codense_ppc::reg::{R0, R3, R4};

    fn counting_module() -> ObjectModule {
        let mut m = ObjectModule::new("count");
        m.code.push(encode(&Insn::Addi { rt: R3, ra: R0, si: 0 }));
        for _ in 0..12 {
            m.code.push(encode(&Insn::Addi { rt: R3, ra: R3, si: 1 }));
            m.code.push(encode(&Insn::Addi { rt: R4, ra: R3, si: 5 }));
        }
        m.code.push(encode(&Insn::Sc));
        m
    }

    #[test]
    fn identical_programs_complete() {
        let m = counting_module();
        for config in [
            CompressionConfig::baseline(),
            CompressionConfig::small_dictionary(16),
            CompressionConfig::nibble_aligned(),
            CompressionConfig::huffman(),
        ] {
            let c = Compressor::new(config).compress(&m).unwrap();
            let got = lockstep(&m, &c, &[], &|_| {}, &TraceMask::default(), 1 << 16, 10_000)
                .expect("no divergence");
            assert_eq!(got, LockstepOk::Completed { steps: m.code.len() as u64, exit: 12 });
        }
    }

    #[test]
    fn corrupted_dictionary_entry_diverges() {
        let m = counting_module();
        let c = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap();
        let mut image = c.to_image();
        assert!(!image.dictionary_by_rank.is_empty());
        // Flip a data bit in the hottest dictionary entry's first word.
        image.dictionary_by_rank[0][0] ^= 1 << 16;
        let bad = CompressedFetcher::from_image(&image);
        let err = lockstep_with(bad, &m, &c, &[], &|_| {}, &TraceMask::default(), 1 << 16, 10_000)
            .expect_err("corruption must be caught");
        assert!(
            matches!(err.kind, DivergenceKind::InsnMismatch | DivergenceKind::RegMismatch),
            "unexpected kind: {err}"
        );
    }

    #[test]
    fn trace_mask_skips_registers() {
        let mask = TraceMask::skipping_gprs(&[0, 11]);
        assert_eq!(mask.skip_gprs, (1 << 0) | (1 << 11));
    }
}
