//! Test-case minimization over [`ProgramSpec`] trees.
//!
//! Shrinking operates on the structured spec, never on raw instruction
//! bytes, so every candidate is a well-formed terminating program — the
//! predicate is only ever asked about programs that build. Passes, coarse
//! to fine:
//!
//! 1. remove whole control-flow nodes (blocks first, which drops entire
//!    loops/dispatches with their subtrees),
//! 2. collapse loop trip counts to 1,
//! 3. remove single instructions inside straight-line blocks,
//! 4. remove register initializations.
//!
//! The passes run to a fixpoint. Every accepted candidate either strictly
//! reduces [`ProgramSpec::weight`] or is a one-shot normalization (trip
//! collapse), and candidates identical to the current best are never
//! re-tested, so the loop terminates.

use crate::spec::{Node, ProgramSpec};

/// Minimizes `spec` while `still_fails` holds.
///
/// `still_fails` must return `true` iff the candidate still reproduces the
/// failure of interest (and must return `false` for candidates that fail to
/// build — [`crate::spec::build`] errors are not "failures", they are
/// rejected candidates). It is called only on specs different from the
/// current best.
pub fn shrink(spec: &ProgramSpec, still_fails: &dyn Fn(&ProgramSpec) -> bool) -> ProgramSpec {
    let mut best = spec.clone();
    loop {
        let mut improved = false;
        improved |= pass(&mut best, still_fails, remove_node_candidate);
        improved |= pass(&mut best, still_fails, collapse_trips_candidate);
        improved |= pass(&mut best, still_fails, remove_insn_candidate);
        improved |= pass(&mut best, still_fails, remove_reg_init_candidate);
        if !improved {
            return best;
        }
    }
}

/// Runs one enumeration pass: `candidate(best, n)` yields the nth mutation
/// of `best` or `None` when the enumeration is exhausted. Accepted
/// candidates restart the enumeration at the same index (the tree shifted
/// under it).
fn pass(
    best: &mut ProgramSpec,
    still_fails: &dyn Fn(&ProgramSpec) -> bool,
    candidate: fn(&ProgramSpec, usize) -> Option<ProgramSpec>,
) -> bool {
    let mut improved = false;
    let mut n = 0;
    while let Some(cand) = candidate(best, n) {
        if cand != *best && still_fails(&cand) {
            *best = cand;
            improved = true;
        } else {
            n += 1;
        }
    }
    improved
}

/// Removes the nth node (pre-order across functions, descending into loop
/// bodies, if-arms, and dispatch arms).
fn remove_node_candidate(spec: &ProgramSpec, n: usize) -> Option<ProgramSpec> {
    let mut cand = spec.clone();
    let mut n = n;
    for func in &mut cand.funcs {
        if remove_nth_node(&mut func.body, &mut n) {
            return Some(cand);
        }
    }
    None
}

fn remove_nth_node(nodes: &mut Vec<Node>, n: &mut usize) -> bool {
    let mut i = 0;
    while i < nodes.len() {
        if *n == 0 {
            nodes.remove(i);
            return true;
        }
        *n -= 1;
        let removed = match &mut nodes[i] {
            Node::Loop { body, .. } => remove_nth_node(body, n),
            Node::If { then, .. } => remove_nth_node(then, n),
            Node::Dispatch { arms, .. } => arms.iter_mut().any(|arm| remove_nth_node(arm, n)),
            Node::Straight(_) | Node::Call(_) => false,
        };
        if removed {
            return true;
        }
        i += 1;
    }
    false
}

/// Sets the nth loop's trip count to 1.
fn collapse_trips_candidate(spec: &ProgramSpec, n: usize) -> Option<ProgramSpec> {
    let mut cand = spec.clone();
    let mut n = n;
    for func in &mut cand.funcs {
        if collapse_nth_loop(&mut func.body, &mut n) {
            return Some(cand);
        }
    }
    None
}

fn collapse_nth_loop(nodes: &mut [Node], n: &mut usize) -> bool {
    for node in nodes {
        match node {
            Node::Loop { trips, body } => {
                if *n == 0 {
                    *trips = 1;
                    return true;
                }
                *n -= 1;
                if collapse_nth_loop(body, n) {
                    return true;
                }
            }
            Node::If { then, .. } => {
                if collapse_nth_loop(then, n) {
                    return true;
                }
            }
            Node::Dispatch { arms, .. } => {
                if arms.iter_mut().any(|arm| collapse_nth_loop(arm, n)) {
                    return true;
                }
            }
            Node::Straight(_) | Node::Call(_) => {}
        }
    }
    false
}

/// Removes the nth instruction across all straight-line blocks.
fn remove_insn_candidate(spec: &ProgramSpec, n: usize) -> Option<ProgramSpec> {
    let mut cand = spec.clone();
    let mut n = n;
    for func in &mut cand.funcs {
        if remove_nth_insn(&mut func.body, &mut n) {
            return Some(cand);
        }
    }
    None
}

fn remove_nth_insn(nodes: &mut [Node], n: &mut usize) -> bool {
    for node in nodes {
        match node {
            Node::Straight(ops) => {
                if *n < ops.len() {
                    ops.remove(*n);
                    return true;
                }
                *n -= ops.len();
            }
            Node::Loop { body, .. } => {
                if remove_nth_insn(body, n) {
                    return true;
                }
            }
            Node::If { then, .. } => {
                if remove_nth_insn(then, n) {
                    return true;
                }
            }
            Node::Dispatch { arms, .. } => {
                if arms.iter_mut().any(|arm| remove_nth_insn(arm, n)) {
                    return true;
                }
            }
            Node::Call(_) => {}
        }
    }
    false
}

/// Removes the nth register initialization.
fn remove_reg_init_candidate(spec: &ProgramSpec, n: usize) -> Option<ProgramSpec> {
    if n >= spec.reg_init.len() {
        return None;
    }
    let mut cand = spec.clone();
    cand.reg_init.remove(n);
    Some(cand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FuncSpec;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::{R0, R4, R5};

    fn addi(rt: codense_ppc::reg::Gpr, si: i16) -> Insn {
        Insn::Addi { rt, ra: R0, si }
    }

    fn bulky_spec() -> ProgramSpec {
        ProgramSpec {
            funcs: vec![FuncSpec {
                frame: false,
                body: vec![
                    Node::Straight(vec![addi(R4, 1), addi(R4, 2), addi(R5, 99)]),
                    Node::Loop {
                        trips: 5,
                        body: vec![Node::Straight(vec![addi(R4, 3), addi(R5, 99)])],
                    },
                    Node::If {
                        cmp: Insn::Cmpwi { bf: codense_ppc::reg::CR0, ra: R4, si: 0 },
                        skip_bo: codense_ppc::insn::bo::IF_TRUE,
                        skip_bi: codense_ppc::reg::CR0.eq_bit(),
                        then: vec![Node::Straight(vec![addi(R5, 99)])],
                    },
                ],
            }],
            reg_init: vec![(R4, 7), (R5, 9)],
            result_reg: R4,
        }
    }

    /// Predicate: the spec still contains an `addi rX, r0, 99` anywhere.
    fn contains_99(spec: &ProgramSpec) -> bool {
        fn nodes_contain(v: &[Node]) -> bool {
            v.iter().any(|n| match n {
                Node::Straight(ops) => ops.iter().any(|op| matches!(op, Insn::Addi { si: 99, .. })),
                Node::Loop { body, .. } => nodes_contain(body),
                Node::If { then, .. } => nodes_contain(then),
                Node::Dispatch { arms, .. } => arms.iter().any(|a| nodes_contain(a)),
                Node::Call(_) => false,
            })
        }
        spec.funcs.iter().any(|f| nodes_contain(&f.body))
    }

    #[test]
    fn shrinks_to_single_marker_instruction() {
        let spec = bulky_spec();
        let small = shrink(&spec, &contains_99);
        assert!(contains_99(&small), "shrinking must preserve the failure");
        assert!(small.weight() < spec.weight());
        // Exactly one node with exactly the marker instruction survives.
        assert_eq!(small.funcs.len(), 1);
        assert_eq!(small.reg_init.len(), 0);
        let total: usize = small
            .funcs
            .iter()
            .map(|f| {
                fn count(v: &[Node]) -> usize {
                    v.iter()
                        .map(|n| match n {
                            Node::Straight(ops) => ops.len(),
                            Node::Loop { body, .. } => count(body),
                            Node::If { then, .. } => count(then),
                            Node::Dispatch { arms, .. } => arms.iter().map(|a| count(a)).sum(),
                            Node::Call(_) => 0,
                        })
                        .sum()
                }
                count(&f.body)
            })
            .sum();
        assert_eq!(total, 1, "only the marker instruction should remain: {small:?}");
    }

    #[test]
    fn shrink_of_passing_spec_is_identity_when_predicate_always_false() {
        let spec = bulky_spec();
        let same = shrink(&spec, &|_| false);
        assert_eq!(same, spec);
    }
}
