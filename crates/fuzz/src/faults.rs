//! Fault injection: corrupted-input batteries for every decoder path.
//!
//! The contract under test is the *no-panic decoder policy*: feeding any
//! byte soup to `codense_core::container::deserialize`,
//! `codense_obj::deserialize`, the nibble-stream parser, or a
//! [`CompressedFetcher`] booted from a corrupt-but-checksummed image must
//! produce a typed error (or a well-formed value) — never a panic, a hang,
//! or an out-of-bounds read. Each battery mutates a valid artifact (bit
//! flips, truncations, splices, extensions, and flips with the trailing
//! CRC re-fixed so corruption *passes* the integrity check), then drives
//! the decoder under `catch_unwind` with a bounded execution budget.

use std::panic::{catch_unwind, AssertUnwindSafe};

use codense_codegen::Rng;
use codense_core::container;
use codense_core::encoding::read_item_coded;
use codense_core::nibbles::NibbleReader;
use codense_core::{CompressedProgram, CompressionConfig, Compressor, EncodingKind, HuffCode};
use codense_isa::IsaRef;
use codense_obj::ObjectModule;
use codense_vm::fetch::{CompressedFetcher, Fetch};
use codense_vm::machine::{Machine, Outcome};

/// Tally of one fault-injection battery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Corrupted inputs fed to a decoder.
    pub checks: u64,
    /// Inputs rejected with a typed error.
    pub typed_errors: u64,
    /// Inputs the decoder accepted (corruption missed the checked bytes, or
    /// was CRC-fixed on purpose).
    pub accepted: u64,
    /// Accepted images additionally driven through bounded execution.
    pub executed: u64,
    /// Panics caught — must be zero; anything else is a bug.
    pub panics: u64,
}

impl FaultReport {
    /// Accumulates another report into this one.
    pub fn absorb(&mut self, other: FaultReport) {
        self.checks += other.checks;
        self.typed_errors += other.typed_errors;
        self.accepted += other.accepted;
        self.executed += other.executed;
        self.panics += other.panics;
    }
}

/// One corruption of a byte string. Mutations that leave the input
/// unchanged (flipping a bit back, zero-length splice) are fine: the
/// decoder must accept the valid form too.
///
/// Public so other robustness batteries (e.g. the serve-protocol
/// malformed-frame tests in `codense-service`) corrupt their inputs with
/// exactly the patterns this crate's decoders are hardened against.
pub fn corrupt(bytes: &[u8], rng: &mut Rng) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match rng.below(5) {
        // Single or multi bit flip.
        0 => {
            for _ in 0..rng.range(1, 4) {
                if out.is_empty() {
                    break;
                }
                let i = rng.below(out.len());
                out[i] ^= 1 << rng.below(8);
            }
        }
        // Truncation (uniform over lengths, biased to field boundaries by
        // the dedicated loop in each battery).
        1 => {
            out.truncate(rng.below(out.len().max(1)));
        }
        // Splice: copy a random slice over another position.
        2 => {
            if out.len() >= 2 {
                let len = rng.range(1, (out.len() / 2).max(1));
                let src = rng.below(out.len() - len + 1);
                let dst = rng.below(out.len() - len + 1);
                let chunk = out[src..src + len].to_vec();
                out[dst..dst + len].copy_from_slice(&chunk);
            }
        }
        // Extension with junk.
        3 => {
            for _ in 0..rng.range(1, 16) {
                out.push(rng.next_u64() as u8);
            }
        }
        // Flip payload bits, then re-fix the trailing CRC-32 so the
        // corruption survives the integrity check and reaches the parser.
        _ => {
            if out.len() > 8 {
                let i = rng.below(out.len() - 4);
                out[i] ^= 1 << rng.below(8);
                let crc = container::crc32(&out[..out.len() - 4]);
                let n = out.len();
                out[n - 4..].copy_from_slice(&crc.to_be_bytes());
            }
        }
    }
    out
}

/// Drives a fetcher booted from an accepted (possibly corrupt) image for a
/// bounded number of steps. Every outcome — clean halt, typed fault, budget
/// exhaustion — is acceptable; only a panic is not.
fn bounded_run(image: &container::ProgramImage, max_steps: u64) {
    let mut fetcher = CompressedFetcher::from_image(image);
    let mut machine = Machine::new(1 << 16);
    let mut pc = 0u64;
    for _ in 0..max_steps {
        let fetched = match fetcher.fetch(pc) {
            Ok(f) => f,
            Err(_) => return,
        };
        let insn = codense_ppc::decode(fetched.word);
        match machine.step(&insn, pc, fetched.next_pc, fetcher.granule()) {
            Ok(Outcome::Next) => pc = fetched.next_pc,
            Ok(Outcome::Branch(t)) => pc = t,
            Ok(Outcome::Halt) | Err(_) => return,
        }
    }
}

/// Corrupts the `.cdns` container of a compressed program `tries` times and
/// checks the decode-and-execute path end to end.
pub fn container_battery(
    compressed: &CompressedProgram,
    rng: &mut Rng,
    tries: usize,
) -> FaultReport {
    let bytes = container::serialize(compressed);
    let mut report = FaultReport::default();

    // Deterministic boundary truncations of the valid container, then the
    // randomized mutation battery.
    let boundary_lens =
        (0..bytes.len().min(32)).chain((bytes.len().saturating_sub(8)..bytes.len()).rev());
    let mut inputs: Vec<Vec<u8>> = boundary_lens.map(|n| bytes[..n].to_vec()).collect();
    for _ in 0..tries {
        inputs.push(corrupt(&bytes, rng));
    }

    for input in inputs {
        report.checks += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| match container::deserialize(&input) {
            Ok(image) => {
                bounded_run(&image, 50_000);
                (false, true)
            }
            Err(_) => (true, false),
        }));
        match outcome {
            Ok((typed, executed)) => {
                report.typed_errors += typed as u64;
                report.accepted += executed as u64;
                report.executed += executed as u64;
            }
            Err(_) => report.panics += 1,
        }
    }
    report
}

/// Corrupts the `.cdm` serialized form of an object module `tries` times;
/// accepted modules are validated and, when still valid, compressed — the
/// compressor must also return typed errors, never panic.
pub fn module_battery(module: &ObjectModule, rng: &mut Rng, tries: usize) -> FaultReport {
    let bytes = codense_obj::serialize(module);
    let mut report = FaultReport::default();

    let boundary_lens =
        (0..bytes.len().min(32)).chain((bytes.len().saturating_sub(8)..bytes.len()).rev());
    let mut inputs: Vec<Vec<u8>> = boundary_lens.map(|n| bytes[..n].to_vec()).collect();
    for _ in 0..tries {
        inputs.push(corrupt(&bytes, rng));
    }

    for input in inputs {
        report.checks += 1;
        let config = match rng.below(3) {
            0 => CompressionConfig::baseline(),
            1 => CompressionConfig::small_dictionary(32),
            _ => CompressionConfig::nibble_aligned(),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| match codense_obj::deserialize(&input) {
            Ok(m) => {
                let mut exercised = false;
                if m.validate().is_ok() && m.len() <= 4 * module.len() + 64 {
                    // Typed CompressError or success — both fine; the size
                    // bound keeps spliced-length monsters cheap.
                    let _ = Compressor::new(config).compress(&m);
                    exercised = true;
                }
                (false, exercised)
            }
            Err(_) => (true, false),
        }));
        match outcome {
            Ok((typed, executed)) => {
                report.typed_errors += typed as u64;
                report.accepted += (!typed) as u64;
                report.executed += executed as u64;
            }
            Err(_) => report.panics += 1,
        }
    }
    report
}

/// Feeds random nibble soup to the stream parser under every encoding and
/// asserts it terminates with monotonic progress — the decoder loop of the
/// paper's fetch hardware must never live-lock on garbage. The Huffman
/// scheme parses against a fixed small code table (soup decodes to random
/// symbols; the parser must still terminate and make progress).
pub fn nibble_soup_battery(rng: &mut Rng, tries: usize) -> FaultReport {
    let mut report = FaultReport::default();
    let huff = HuffCode::from_frequencies(&[40, 20, 10, 5, 2, 1, 1], 80);
    for _ in 0..tries {
        let len = rng.range(1, 96);
        let soup: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        for kind in [
            EncodingKind::Baseline,
            EncodingKind::OneByte,
            EncodingKind::NibbleAligned,
            EncodingKind::Huffman,
        ] {
            report.checks += 1;
            let table = (kind == EncodingKind::Huffman).then_some(&huff);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut r = NibbleReader::new(&soup);
                let mut last = r.pos();
                let mut items = 0u64;
                while let Some(_item) =
                    read_item_coded(kind, IsaRef(&codense_ppc::ISA), table, &mut r)
                {
                    assert!(r.pos() > last, "parser made no progress at nibble {last}");
                    last = r.pos();
                    items += 1;
                    assert!(items <= 2 * soup.len() as u64 + 2, "parser over-ran the stream");
                }
                items
            }));
            match outcome {
                Ok(_) => report.typed_errors += 1,
                Err(_) => report.panics += 1,
            }
        }
    }
    report
}

/// Hostile-input battery for the two standalone entropy decoders the
/// comparison models use: `codense_huffman::decode_checked` (CCRP's
/// line-oriented Huffman) and `codense_lzw::decompress_checked` (the Unix
/// Compress model). Both must return typed errors on truncated streams,
/// invalid codes, and claimed lengths larger than the bit supply — never
/// panic, and never allocate past the caller's bound.
pub fn entropy_decoder_battery(rng: &mut Rng, tries: usize) -> FaultReport {
    let mut report = FaultReport::default();

    // A small skewed corpus both coders compress well.
    let data: Vec<u8> = (0..1024u32).map(|i| (i % 7 + i % 3) as u8).collect();
    let hcode =
        codense_huffman::HuffmanCode::from_frequencies(&codense_huffman::byte_frequencies(&data));
    let hbits = codense_huffman::encode(&hcode, &data);

    for _ in 0..tries {
        // Huffman: corrupted bits with an honest count, then a forged count
        // exceeding the bit supply (must be rejected before allocating).
        let bad_bits = corrupt(&hbits, rng);
        let forged_count = bad_bits.len().saturating_mul(8) + 1 + rng.below(1 << 20);
        for (bits, count) in [(&bad_bits, data.len()), (&bad_bits, forged_count)] {
            report.checks += 1;
            match catch_unwind(AssertUnwindSafe(|| {
                codense_huffman::decode_checked(&hcode, bits, count).map(|out| out.len())
            })) {
                Ok(Ok(n)) => {
                    assert_eq!(n, count);
                    report.accepted += 1;
                }
                Ok(Err(_)) => report.typed_errors += 1,
                Err(_) => report.panics += 1,
            }
        }

        // LZW: corrupted compressed stream under a hard output bound — the
        // bound caps allocation no matter what the stream claims.
        let max_out = 4 * data.len();
        let bad = corrupt(&codense_lzw::compress(&data), rng);
        report.checks += 1;
        match catch_unwind(AssertUnwindSafe(|| {
            codense_lzw::decompress_checked(&bad, max_out).map(|out| out.len())
        })) {
            Ok(Ok(n)) => {
                assert!(n <= max_out, "LZW output {n} exceeds the {max_out}-byte bound");
                report.accepted += 1;
            }
            Ok(Err(_)) => report.typed_errors += 1,
            Err(_) => report.panics += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_ppc::encode;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::{R3, R4};

    fn module() -> ObjectModule {
        let mut m = ObjectModule::new("t");
        for _ in 0..24 {
            m.code.push(encode(&Insn::Addi { rt: R3, ra: R3, si: 1 }));
            m.code.push(encode(&Insn::Addi { rt: R4, ra: R4, si: 2 }));
        }
        m.code.push(encode(&Insn::Sc));
        m
    }

    #[test]
    fn container_battery_never_panics() {
        let c = Compressor::new(CompressionConfig::nibble_aligned()).compress(&module()).unwrap();
        let mut rng = Rng::new(7);
        let report = container_battery(&c, &mut rng, 150);
        assert_eq!(report.panics, 0, "{report:?}");
        assert!(report.typed_errors > 0);
        assert!(report.checks >= 150);
    }

    #[test]
    fn module_battery_never_panics() {
        let mut rng = Rng::new(8);
        let report = module_battery(&module(), &mut rng, 150);
        assert_eq!(report.panics, 0, "{report:?}");
        assert!(report.typed_errors > 0);
    }

    #[test]
    fn nibble_soup_never_hangs_or_panics() {
        let mut rng = Rng::new(9);
        let report = nibble_soup_battery(&mut rng, 120);
        assert_eq!(report.panics, 0, "{report:?}");
        assert_eq!(report.checks, 4 * 120);
    }

    #[test]
    fn entropy_decoders_never_panic_and_reject_forged_lengths() {
        let mut rng = Rng::new(10);
        let report = entropy_decoder_battery(&mut rng, 100);
        assert_eq!(report.panics, 0, "{report:?}");
        // Every forged-count huffman probe must be a typed rejection, so at
        // least a third of all checks are typed errors.
        assert!(report.typed_errors >= 100, "{report:?}");
    }

    #[test]
    fn huffman_container_battery_never_panics() {
        let c = Compressor::new(CompressionConfig::huffman()).compress(&module()).unwrap();
        let mut rng = Rng::new(11);
        let report = container_battery(&c, &mut rng, 150);
        assert_eq!(report.panics, 0, "{report:?}");
        assert!(report.typed_errors > 0);
    }
}
