//! The fuzz campaign driver: seeded case generation, parallel execution,
//! shrinking of failures, and a deterministic report.
//!
//! Every case derives its own RNG stream from the campaign seed, so the
//! report is byte-identical for a given `(cases, seed)` pair regardless of
//! the worker count: `codense_core::parallel::par_map` preserves order, the
//! report carries no timing, and each case is self-contained.

use codense_codegen::Rng;
use codense_core::parallel::par_map;
use codense_core::{telemetry, verify, CompressionConfig, Compressor};
use codense_obj::{BasicBlocks, ObjectModule};
use codense_vm::fetch::CompressedFetcher;

use crate::faults::{
    container_battery, entropy_decoder_battery, module_battery, nibble_soup_battery, FaultReport,
};
use crate::gen::{generate_spec, GenConfig};
use crate::oracle::{lockstep, lockstep_with, LockstepOk, TraceMask};
use crate::shrink::shrink;
use crate::spec::{build, BuiltProgram, ProgramSpec, JT_BASE, MEM_BYTES};

/// Golden-ratio increment used to derive per-case seeds (SplitMix64's own
/// stream constant, so cases are decorrelated).
const CASE_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
/// Extra salt separating the fault-injection stream from generation.
const FAULT_SALT: u64 = 0xD1B5_4A32_D192_ED03;
/// Extra salt for the hybrid hotness-mask stream (`--hybrid` campaigns).
const HYBRID_SALT: u64 = 0x94D0_49BB_1331_11EB;

/// Campaign options.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of differential cases to run.
    pub cases: usize,
    /// Campaign seed; every printed failure carries the derived case seed.
    pub seed: u64,
    /// Per-run instruction budget for the lockstep oracle.
    pub max_steps: u64,
    /// Randomized corruption attempts per fault battery per case.
    pub fault_tries: usize,
    /// Additionally fuzz hybrid images: per case, derive a random
    /// block-aligned hotness mask from the case seed and run the lockstep
    /// oracle on the partially compressed program under every encoding.
    pub hybrid: bool,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions { cases: 100, seed: 1, max_steps: 200_000, fault_tries: 4, hybrid: false }
    }
}

/// The four encodings every case is checked under.
fn encodings() -> [(&'static str, CompressionConfig); 4] {
    [
        ("baseline", CompressionConfig::baseline()),
        ("one-byte", CompressionConfig::small_dictionary(32)),
        ("nibble", CompressionConfig::nibble_aligned()),
        ("huffman", CompressionConfig::huffman()),
    ]
}

/// The oracle mask for generated programs: `r11` carries fetch-domain
/// addresses in dispatch sequences, and the jump-table region of data
/// memory holds domain-specific entries by construction.
fn fuzz_mask(built: &BuiltProgram) -> TraceMask {
    let entries: usize = built.module.jump_tables.iter().map(|t| t.targets.len()).sum();
    TraceMask {
        skip_gprs: 1 << 11,
        mem_skip: std::iter::once(JT_BASE as usize..JT_BASE as usize + 4 * entries).collect(),
    }
}

/// Derives the per-case block-aligned hotness mask for hybrid fuzzing.
/// Recomputed from whatever module is at hand, so shrunk candidates get a
/// mask over their *own* basic blocks from the same random stream.
fn hybrid_mask(module: &ObjectModule, case_seed: u64) -> Vec<bool> {
    let mut rng = Rng::new(case_seed ^ HYBRID_SALT);
    // Per-case hot fraction between 10% and 60% of blocks.
    let pct = rng.range(10, 60);
    let mut exempt = vec![false; module.len()];
    for &(start, end) in BasicBlocks::compute(module).blocks() {
        if rng.below(100) < pct {
            exempt[start..end].iter_mut().for_each(|e| *e = true);
        }
    }
    exempt
}

/// Outcome of one case, aggregated into the report.
#[derive(Debug, Clone, Default)]
struct CaseOutcome {
    /// Per-encoding completed lockstep runs.
    completed: [u64; 4],
    /// Per-encoding skipped (overflow rewriting) runs.
    skipped: [u64; 4],
    /// Per-encoding completed hybrid lockstep runs (`--hybrid` only).
    hybrid_completed: [u64; 4],
    /// Per-encoding skipped hybrid runs.
    hybrid_skipped: [u64; 4],
    /// Both-sides-faulted runs (the program was faulty, traces agreed).
    agreed_faults: u64,
    faults: FaultReport,
    /// Failure lines (empty when the case passed).
    failures: Vec<String>,
}

/// Runs the full differential pipeline for one case seed.
fn run_case(opts: &FuzzOptions, case: usize) -> CaseOutcome {
    telemetry::FUZZ_CASES.inc();
    let case_seed = opts.seed ^ (case as u64 + 1).wrapping_mul(CASE_SALT);
    let mut out = CaseOutcome::default();
    let mut rng = Rng::new(case_seed);
    let spec = generate_spec(&mut rng, &GenConfig::default());

    let built = match build(&spec) {
        Ok(b) => b,
        Err(e) => {
            out.failures.push(format!("case {case} seed {case_seed:#018x}: build failed: {e}"));
            return out;
        }
    };
    let mask = fuzz_mask(&built);

    for (ei, (label, config)) in encodings().into_iter().enumerate() {
        let compressed = match Compressor::new(config.clone()).compress(&built.module) {
            Ok(c) => c,
            Err(e) => {
                out.failures.push(format!(
                    "case {case} seed {case_seed:#018x}: [{label}] compress error: {e}"
                ));
                continue;
            }
        };
        if let Err(e) = verify::verify(&built.module, &compressed) {
            out.failures
                .push(format!("case {case} seed {case_seed:#018x}: [{label}] verify error: {e}"));
            continue;
        }
        telemetry::FUZZ_LOCKSTEP_RUNS.inc();
        match lockstep(
            &built.module,
            &compressed,
            &built.table_addrs,
            &|_| {},
            &mask,
            MEM_BYTES,
            opts.max_steps,
        ) {
            Ok(LockstepOk::Completed { .. }) => out.completed[ei] += 1,
            Ok(LockstepOk::Faulted { .. }) => out.agreed_faults += 1,
            Ok(LockstepOk::SkippedOverflow) => out.skipped[ei] += 1,
            Err(divergence) => {
                telemetry::FUZZ_DIVERGENCES.inc();
                let small = shrink(&spec, &|cand| diverges_under(cand, &config, opts.max_steps));
                out.failures.push(format!(
                    "case {case} seed {case_seed:#018x}: [{label}] {divergence}; \
                     reproducer shrunk weight {} -> {}",
                    spec.weight(),
                    small.weight()
                ));
            }
        }
    }

    if opts.hybrid {
        let exempt = hybrid_mask(&built.module, case_seed);
        for (ei, (label, config)) in encodings().into_iter().enumerate() {
            let hybrid =
                match Compressor::new(config.clone()).compress_masked(&built.module, &exempt) {
                    Ok(c) => c,
                    Err(e) => {
                        out.failures.push(format!(
                        "case {case} seed {case_seed:#018x}: [{label}/hybrid] compress error: {e}"
                    ));
                        continue;
                    }
                };
            if let Err(e) = verify::verify(&built.module, &hybrid) {
                out.failures.push(format!(
                    "case {case} seed {case_seed:#018x}: [{label}/hybrid] verify error: {e}"
                ));
                continue;
            }
            telemetry::FUZZ_LOCKSTEP_RUNS.inc();
            match lockstep(
                &built.module,
                &hybrid,
                &built.table_addrs,
                &|_| {},
                &mask,
                MEM_BYTES,
                opts.max_steps,
            ) {
                Ok(LockstepOk::Completed { .. }) => out.hybrid_completed[ei] += 1,
                Ok(LockstepOk::Faulted { .. }) => out.agreed_faults += 1,
                Ok(LockstepOk::SkippedOverflow) => out.hybrid_skipped[ei] += 1,
                Err(divergence) => {
                    telemetry::FUZZ_DIVERGENCES.inc();
                    let small = shrink(&spec, &|cand| {
                        hybrid_diverges_under(cand, &config, case_seed, opts.max_steps)
                    });
                    out.failures.push(format!(
                        "case {case} seed {case_seed:#018x}: [{label}/hybrid] {divergence}; \
                         reproducer shrunk weight {} -> {}",
                        spec.weight(),
                        small.weight()
                    ));
                }
            }
        }
    }

    // Fault-injection stream: independent of the generation stream so
    // adding mutators never perturbs generated programs.
    let mut frng = Rng::new(case_seed ^ FAULT_SALT);
    for config in [CompressionConfig::nibble_aligned(), CompressionConfig::huffman()] {
        if let Ok(compressed) = Compressor::new(config).compress(&built.module) {
            out.faults.absorb(container_battery(&compressed, &mut frng, opts.fault_tries));
        }
    }
    out.faults.absorb(module_battery(&built.module, &mut frng, opts.fault_tries));
    out.faults.absorb(nibble_soup_battery(&mut frng, opts.fault_tries));
    out.faults.absorb(entropy_decoder_battery(&mut frng, opts.fault_tries));
    telemetry::FUZZ_FAULT_CHECKS.add(out.faults.checks);
    out
}

/// Whether `spec` (still) diverges under `config` — the shrinking predicate.
fn diverges_under(spec: &ProgramSpec, config: &CompressionConfig, max_steps: u64) -> bool {
    telemetry::FUZZ_SHRINK_CANDIDATES.inc();
    let Ok(built) = build(spec) else { return false };
    let Ok(compressed) = Compressor::new(config.clone()).compress(&built.module) else {
        return false;
    };
    let mask = fuzz_mask(&built);
    lockstep(&built.module, &compressed, &built.table_addrs, &|_| {}, &mask, MEM_BYTES, max_steps)
        .is_err()
}

/// Whether `spec` (still) diverges as a hybrid image under `config` — the
/// shrinking predicate for `--hybrid` failures. The mask is re-derived from
/// each candidate's own blocks.
fn hybrid_diverges_under(
    spec: &ProgramSpec,
    config: &CompressionConfig,
    case_seed: u64,
    max_steps: u64,
) -> bool {
    telemetry::FUZZ_SHRINK_CANDIDATES.inc();
    let Ok(built) = build(spec) else { return false };
    let exempt = hybrid_mask(&built.module, case_seed);
    let Ok(hybrid) = Compressor::new(config.clone()).compress_masked(&built.module, &exempt) else {
        return false;
    };
    let mask = fuzz_mask(&built);
    lockstep(&built.module, &hybrid, &built.table_addrs, &|_| {}, &mask, MEM_BYTES, max_steps)
        .is_err()
}

/// Result of a fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Rendered report lines (deterministic for a given options value).
    pub lines: Vec<String>,
    /// Total failures (divergences, panics, self-test misses).
    pub failures: usize,
}

impl FuzzReport {
    /// Whether the campaign found nothing.
    pub fn ok(&self) -> bool {
        self.failures == 0
    }

    /// The report as one printable string.
    pub fn render(&self) -> String {
        self.lines.join("\n")
    }
}

/// The fault-injection self-test: corrupt a dictionary entry of a known
/// program, prove the oracle catches it, and shrink the program to a
/// minimal reproducer. Returns report lines and the failure count (0 when
/// the corruption was caught and the reproducer still reproduces).
fn self_test(max_steps: u64) -> (Vec<String>, usize) {
    let mut rng = Rng::new(0xC0DE_D0C5);
    let cfg = GenConfig { max_funcs: 2, ..GenConfig::default() };
    // Generated specs draw from a vocabulary, so a dictionary always forms;
    // search a few seeds for one whose hottest entries sit on the hot path.
    let mut found: Option<(ProgramSpec, u32, String)> = None;
    for _ in 0..20 {
        let spec = generate_spec(&mut rng, &cfg);
        if let Some((rank, kind)) = detectable_rank(&spec, max_steps) {
            found = Some((spec, rank, kind));
            break;
        }
    }
    let Some((spec, rank, kind)) = found else {
        return (vec!["self-test: FAILED - no seeded corruption was ever detected".into()], 1);
    };

    let small = shrink(&spec, &|cand| detectable_rank(cand, max_steps).is_some());
    let still = detectable_rank(&small, max_steps).is_some();
    let line = format!(
        "self-test: corrupt dictionary rank {rank} caught ({kind}); \
         reproducer shrunk weight {} -> {}",
        spec.weight(),
        small.weight()
    );
    let mut lines = vec![line];
    let mut failures = 0;
    if !still {
        lines.push("self-test: FAILED - shrunk reproducer lost the failure".into());
        failures += 1;
    }
    let (h_line, h_fail) = hybrid_smoke(max_steps);
    lines.push(h_line);
    failures += h_fail;
    (lines, failures)
}

/// Hybrid smoke test: a fixed-seed program under a fixed-seed hotness mask
/// must survive full-trace lockstep under the nibble encoding.
fn hybrid_smoke(max_steps: u64) -> (String, usize) {
    // Chosen so the derived mask exempts a real fraction of the program
    // (84 of 208 instructions) — an empty mask would smoke-test nothing.
    const SMOKE_SEED: u64 = 0x4B1D_C005;
    // The smoke program is fixed-seed, so it must be allowed to halt even
    // when the campaign runs with a tiny `--max-steps`.
    let max_steps = max_steps.max(1 << 20);
    let mut rng = Rng::new(SMOKE_SEED);
    let spec = generate_spec(&mut rng, &GenConfig { max_funcs: 2, ..GenConfig::default() });
    let built = match build(&spec) {
        Ok(b) => b,
        Err(e) => return (format!("self-test: FAILED - hybrid smoke build: {e}"), 1),
    };
    let exempt = hybrid_mask(&built.module, SMOKE_SEED);
    let hybrid = match Compressor::new(CompressionConfig::nibble_aligned())
        .compress_masked(&built.module, &exempt)
    {
        Ok(c) => c,
        Err(e) => return (format!("self-test: FAILED - hybrid smoke compress: {e}"), 1),
    };
    if let Err(e) = verify::verify(&built.module, &hybrid) {
        return (format!("self-test: FAILED - hybrid smoke verify: {e}"), 1);
    }
    let mask = fuzz_mask(&built);
    telemetry::FUZZ_LOCKSTEP_RUNS.inc();
    match lockstep(&built.module, &hybrid, &built.table_addrs, &|_| {}, &mask, MEM_BYTES, max_steps)
    {
        Ok(_) => (
            format!(
                "self-test: hybrid smoke ok ({} of {} insns exempt)",
                exempt.iter().filter(|&&e| e).count(),
                exempt.len()
            ),
            0,
        ),
        Err(d) => (format!("self-test: FAILED - hybrid smoke diverged: {d}"), 1),
    }
}

/// Finds the lowest dictionary rank whose single-bit corruption makes the
/// lockstep oracle diverge for this spec (nibble encoding), with the
/// divergence kind. `None` if the spec builds no detectable dictionary use.
fn detectable_rank(spec: &ProgramSpec, max_steps: u64) -> Option<(u32, String)> {
    let built = build(spec).ok()?;
    let compressed =
        Compressor::new(CompressionConfig::nibble_aligned()).compress(&built.module).ok()?;
    let mask = fuzz_mask(&built);
    for rank in 0..compressed.dictionary.len() as u32 {
        telemetry::FUZZ_LOCKSTEP_RUNS.inc();
        let mut image = compressed.to_image();
        image.dictionary_by_rank[rank as usize][0] ^= 1 << 21;
        let fetcher = CompressedFetcher::from_image(&image);
        if let Err(d) = lockstep_with(
            fetcher,
            &built.module,
            &compressed,
            &built.table_addrs,
            &|_| {},
            &mask,
            MEM_BYTES,
            max_steps,
        ) {
            return Some((rank, d.kind.to_string()));
        }
    }
    None
}

/// Runs a fuzz campaign. Worker count comes from
/// [`codense_core::parallel::jobs`]; the report is independent of it.
pub fn run(opts: &FuzzOptions) -> FuzzReport {
    let mut lines = vec![format!(
        "codense fuzz: cases={} seed={:#x} max-steps={} fault-tries={} hybrid={}",
        opts.cases, opts.seed, opts.max_steps, opts.fault_tries, opts.hybrid
    )];
    let (st_lines, mut failures) = {
        let _phase = telemetry::phase("fuzz-self-test");
        self_test(opts.max_steps)
    };
    lines.extend(st_lines);

    let cases_phase = telemetry::phase("fuzz-cases");
    let outcomes = par_map((0..opts.cases).collect(), |_, case| run_case(opts, case));
    drop(cases_phase);

    let mut completed = [0u64; 4];
    let mut skipped = [0u64; 4];
    let mut hybrid_completed = [0u64; 4];
    let mut hybrid_skipped = [0u64; 4];
    let mut agreed_faults = 0u64;
    let mut faults = FaultReport::default();
    let mut failure_lines = Vec::new();
    for out in outcomes {
        for e in 0..4 {
            completed[e] += out.completed[e];
            skipped[e] += out.skipped[e];
            hybrid_completed[e] += out.hybrid_completed[e];
            hybrid_skipped[e] += out.hybrid_skipped[e];
        }
        agreed_faults += out.agreed_faults;
        faults.absorb(out.faults);
        failure_lines.extend(out.failures);
    }
    failures += failure_lines.len() + faults.panics as usize;

    let labels = encodings().map(|(l, _)| l);
    for e in 0..4 {
        lines.push(format!(
            "encoding {}: completed={} skipped-overflow={}",
            labels[e], completed[e], skipped[e]
        ));
    }
    if opts.hybrid {
        for e in 0..4 {
            lines.push(format!(
                "hybrid {}: completed={} skipped-overflow={}",
                labels[e], hybrid_completed[e], hybrid_skipped[e]
            ));
        }
    }
    lines.push(format!("agreed-faults={agreed_faults}"));
    lines.push(format!(
        "fault-injection: checks={} typed-errors={} accepted={} executed={} panics={}",
        faults.checks, faults.typed_errors, faults.accepted, faults.executed, faults.panics
    ));
    lines.extend(failure_lines);
    lines.push(if failures == 0 {
        format!("result: OK ({} cases, 0 divergences, 0 panics)", opts.cases)
    } else {
        format!("result: FAIL ({failures} failures over {} cases)", opts.cases)
    });
    FuzzReport { lines, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_is_clean_and_deterministic() {
        let opts =
            FuzzOptions { cases: 6, seed: 99, max_steps: 200_000, fault_tries: 2, hybrid: false };
        let a = run(&opts);
        assert!(a.ok(), "campaign found failures:\n{}", a.render());
        let b = run(&opts);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn tiny_hybrid_campaign_is_clean_and_deterministic() {
        let opts =
            FuzzOptions { cases: 4, seed: 7, max_steps: 200_000, fault_tries: 1, hybrid: true };
        let a = run(&opts);
        assert!(a.ok(), "hybrid campaign found failures:\n{}", a.render());
        assert!(a.render().contains("hybrid nibble: completed="), "{}", a.render());
        let b = run(&opts);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn self_test_detects_seeded_corruption() {
        let (lines, failures) = self_test(200_000);
        assert_eq!(failures, 0, "{lines:?}");
        assert!(lines[0].contains("caught"), "{lines:?}");
    }
}
