//! SPEC-scale synthetic workload corpus.
//!
//! The paper evaluated statically-linked SPEC CINT95 binaries — tens of
//! thousands to millions of instructions — while the repository's benchmark
//! generator (`codense-codegen`) tops out at a few thousand. This crate
//! closes that gap: it builds *runnable* programs of 10K to 1M+ lowered
//! instructions on both ISAs, with the structure that dominates real
//! statically-linked binaries:
//!
//! * **A duplicated library layer.** Every module carries its own copy of
//!   the same `dup` library routines, stamped from identical IR so the
//!   lowered bodies are byte-identical across modules — the cross-module
//!   repetition a dictionary compressor feeds on (the paper's §1.1
//!   observation at link scale).
//! * **Deep multi-module call graphs.** A dispatcher root fans out through
//!   per-group jump-table dispatchers to every module's root, each of which
//!   drives a chain of module-internal helpers into the library layer. All
//!   calls go from lower to higher function indices, so the static call
//!   graph is a DAG and every run terminates.
//! * **Big switch dispatch.** The main loop funnels through 16-way
//!   jump-table switches (bounded by the lowering's 511-table addressing
//!   limit), so the compressed-domain jump-table patching and the VM's
//!   indirect-branch path are exercised at scale.
//! * **Cold error paths.** Most static bulk hangs off `if (error_flag)`
//!   guards on global 0, which is never written: statically present (and
//!   compressed), dynamically never executed — the hot/cold split real
//!   programs exhibit and the hybrid profiler models.
//!
//! Programs are seeded-deterministic: the same [`CorpusSpec`] always builds
//! the same module, byte for byte. Every program starts with the lowering's
//! entry stub (`bl F0; sc`), runs under `codense-vm` from PC 0, halts with a
//! deterministic exit checksum, and holds under the fuzz crates' lockstep
//! oracle with the masks [`CorpusProgram::mask_gprs`] /
//! [`CorpusProgram::mem_mask_ranges`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use codense_codegen::ir::{
    BinOp, CmpOp, Cond, Expr, FuncRef, Function, Global, Local, Program, Stmt, Width,
};
use codense_codegen::lower::lower_program_with;
use codense_codegen::lower_mips::lower_program_mips_with;
use codense_codegen::{LowerOptions, Rng};
use codense_core::CompressedProgram;
use codense_isa::{Core, IsaRef, MachineError};
use codense_obj::ObjectModule;
use codense_vm::{run, LinearFetcher, RunResult};

/// Data-memory size every corpus program runs with: 8 MiB covers the global
/// area at `0x0040_0000`, the jump tables at [`TABLE_BASE`], and the stack
/// parked near the top.
pub const MEM_BYTES: usize = 1 << 23;

/// Base byte address of jump table 0; table *t* lives at `TABLE_BASE + 64t`
/// (the lowering's `TABLE_HI`/`table_id * 64` addressing, 16 entries max).
pub const TABLE_BASE: u32 = 0x0050_0000;

/// Global variable slots (global 0 is the never-written cold-path flag).
const GLOBALS: u16 = 256;

/// Module-internal helper functions chained below each root.
const INTERNALS: usize = 5;

/// Jump-table budget: the lowering addresses table *t* at `table_id * 64`
/// through a signed 16-bit immediate, capping ids at 511. Hot dispatch
/// switches stop at 350 and cold switches at 480, leaving headroom.
const HOT_TABLE_CEILING: usize = 350;
const COLD_TABLE_CEILING: usize = 480;

/// Bytes below the top of memory masked from lockstep memory comparison:
/// the stack region, where spilled link-register values (fetch-domain
/// addresses, legitimately different between native and compressed runs)
/// go stale after frames pop.
const STACK_MASK_BYTES: usize = 64 << 10;

/// Which backend a corpus program is lowered for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusIsa {
    /// PowerPC (the paper's target).
    Ppc,
    /// The MIPS backend.
    Mips,
}

impl CorpusIsa {
    /// The compressor-facing ISA handle.
    pub fn isa_ref(self) -> IsaRef {
        match self {
            CorpusIsa::Ppc => IsaRef(&codense_ppc::ISA),
            CorpusIsa::Mips => IsaRef(&codense_mips::ISA),
        }
    }

    /// The CLI spelling (`ppc` / `mips`).
    pub fn name(self) -> &'static str {
        match self {
            CorpusIsa::Ppc => "ppc",
            CorpusIsa::Mips => "mips",
        }
    }
}

/// The corpus knobs. Same spec ⇒ same program, byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Target static size in lowered instructions. The builder calibrates
    /// module count toward this; [`CorpusStats::insns`] records the actual
    /// size (within ~10–15% of the target).
    pub insns: usize,
    /// Identical library-routine copies stamped into every module — the
    /// duplication knob. More copies ⇒ more cross-module repetition ⇒
    /// better dictionary compression.
    pub dup: usize,
    /// PRNG seed for everything the spec doesn't pin.
    pub seed: u64,
    /// Cold-path bulk multiplier: how many statements each never-executed
    /// error-handling block carries (the hotness knob — higher means a
    /// larger fraction of the program is statically present but
    /// dynamically dead).
    pub cold_weight: u32,
    /// Approximate dynamic instruction count of a full run. The builder
    /// measures one dispatch pass and sets the main loop's pass count so a
    /// run executes about this many instructions before halting.
    pub dynamic_target: u64,
}

impl Default for CorpusSpec {
    fn default() -> CorpusSpec {
        CorpusSpec {
            insns: 100_000,
            dup: 8,
            seed: 0xC0DE_5EED,
            cold_weight: 3,
            dynamic_target: 4_000_000,
        }
    }
}

/// What the builder actually produced (the spec gives targets; these are
/// measurements of the deterministic result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusStats {
    /// Modules in the program.
    pub modules: usize,
    /// Total functions (dispatchers + roots + internals + library copies).
    pub functions: usize,
    /// Lowered instruction count (`module.code.len()`).
    pub insns: usize,
    /// Jump tables emitted.
    pub jump_tables: usize,
    /// Main-loop dispatch passes (the dynamic-size calibration result).
    pub passes: u32,
    /// Instructions a full native run executes before halting.
    pub dynamic_insns: u64,
    /// The deterministic exit checksum a run halts with.
    pub exit_code: u32,
}

/// A built corpus program: the lowered module plus everything needed to run
/// it (table placement, memory size, lockstep masks).
#[derive(Debug, Clone)]
pub struct CorpusProgram {
    /// The spec this program was built from.
    pub spec: CorpusSpec,
    /// The backend it is lowered for.
    pub isa: CorpusIsa,
    /// The lowered, validated module (starts with the entry stub at
    /// instruction 0; running it from PC 0 halts with
    /// [`CorpusStats::exit_code`]).
    pub module: ObjectModule,
    /// Byte address of each jump table (`TABLE_BASE + 64t`, matching the
    /// addresses the lowered code computes).
    pub table_addrs: Vec<u32>,
    /// Measurements of the built program.
    pub stats: CorpusStats,
}

/// Why a build failed. Lowering inside the documented envelope (function
/// bodies within conditional-branch reach, ≤ 480 jump tables) cannot fail;
/// these surface misuse and envelope bugs as typed errors rather than
/// panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The lowering or module validation rejected the program.
    Lower(String),
    /// The calibration run hit its step ceiling without halting.
    NoHalt,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Lower(e) => write!(f, "corpus lowering failed: {e}"),
            BuildError::NoHalt => write!(f, "corpus calibration run did not halt"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds the corpus program for `spec` on `isa`.
///
/// Deterministic: the same `(spec, isa)` always yields the same module.
/// The builder sizes in two passes (module count toward `spec.insns`, then
/// main-loop passes toward `spec.dynamic_target` by measuring one dispatch
/// pass in the VM), so it lowers and runs the program internally.
///
/// # Errors
///
/// [`BuildError`] if lowering rejects the program or a calibration run
/// fails to halt — neither occurs inside the documented spec envelope.
pub fn build(spec: &CorpusSpec, isa: CorpusIsa) -> Result<CorpusProgram, BuildError> {
    let per_module = estimate_module_insns(spec);
    let overhead = 120;
    let mut modules = clamp_modules(spec.insns.saturating_sub(overhead) / per_module.max(1));

    let mut module = lower_ir(spec, modules, 1, isa)?;
    let actual = module.code.len();
    // One proportional correction toward the static target.
    if actual.abs_diff(spec.insns) * 10 > spec.insns {
        let scaled = clamp_modules(modules * spec.insns / actual.max(1));
        if scaled != modules {
            modules = scaled;
            module = lower_ir(spec, modules, 1, isa)?;
        }
    }

    // Measure one dispatch pass, then size the main loop for the dynamic
    // target. The single-pass run also proves termination.
    let one_pass = run_module(&module, isa, 200_000_000).map_err(|e| match e {
        MachineError::StepLimit => BuildError::NoHalt,
        other => BuildError::Lower(other.to_string()),
    })?;
    let passes = (spec.dynamic_target / one_pass.steps.max(1)).clamp(1, 20_000) as u32;
    let final_run = if passes > 1 {
        module = lower_ir(spec, modules, passes, isa)?;
        run_module(&module, isa, spec.dynamic_target * 4 + 50_000_000).map_err(|e| match e {
            MachineError::StepLimit => BuildError::NoHalt,
            other => BuildError::Lower(other.to_string()),
        })?
    } else {
        one_pass
    };

    module.validate_with(isa.isa_ref()).map_err(|e| BuildError::Lower(e.to_string()))?;
    let table_addrs: Vec<u32> =
        (0..module.jump_tables.len()).map(|t| TABLE_BASE + 64 * t as u32).collect();
    let stats = CorpusStats {
        modules,
        functions: module.functions.len(),
        insns: module.code.len(),
        jump_tables: module.jump_tables.len(),
        passes,
        dynamic_insns: final_run.steps,
        exit_code: final_run.exit_code,
    };
    Ok(CorpusProgram { spec: spec.clone(), isa, module, table_addrs, stats })
}

impl CorpusProgram {
    /// A fresh machine for this program with the jump tables seeded for
    /// *native* (word-granular) execution: entry *e* of table *t* holds the
    /// fetch-domain address `8 × target`.
    pub fn native_core(&self) -> Result<Box<dyn Core>, MachineError> {
        let mut core = self.new_core();
        for (t, table) in self.module.jump_tables.iter().enumerate() {
            for (e, &target) in table.targets.iter().enumerate() {
                core.write32(self.table_addrs[t] + 4 * e as u32, 8 * target as u32)?;
            }
        }
        Ok(core)
    }

    /// A fresh machine with the jump tables seeded for *compressed*
    /// execution: entries hold the compressed program's patched
    /// (nibble-domain) table values.
    pub fn compressed_core(
        &self,
        compressed: &CompressedProgram,
    ) -> Result<Box<dyn Core>, MachineError> {
        let mut core = self.new_core();
        for (t, table) in compressed.jump_tables.iter().enumerate() {
            for (e, &target) in table.iter().enumerate() {
                core.write32(self.table_addrs[t] + 4 * e as u32, target as u32)?;
            }
        }
        Ok(core)
    }

    /// Runs the program natively (linear fetch) to completion.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] the run raises (a healthy corpus program halts
    /// cleanly; see [`CorpusStats::dynamic_insns`] for the step budget it
    /// needs).
    pub fn run_native(&self, max_steps: u64) -> Result<RunResult, MachineError> {
        let mut core = self.native_core()?;
        let mut fetch = LinearFetcher::new(self.module.code.clone());
        run(core.as_mut(), &mut fetch, 0, max_steps)
    }

    /// GPR numbers that legitimately hold fetch-domain addresses under this
    /// ISA's lowering templates, for lockstep masking: the link-register
    /// spill path and the jump-table dispatch scratch.
    pub fn mask_gprs(&self) -> &'static [u8] {
        match self.isa {
            // r0 spills LR in prologues/epilogues; r11 carries the loaded
            // jump-table entry in the switch template.
            CorpusIsa::Ppc => &[0, 11],
            // $ra holds `jal` link values; $t0/$t1 carry the loaded
            // jump-table entry depending on scrutinee shape.
            CorpusIsa::Mips => &[8, 9, 31],
        }
    }

    /// Byte ranges excluded from lockstep memory comparison: the jump-table
    /// region (seeded domain-specifically by construction) and the stack
    /// region (stale spilled link-register values).
    pub fn mem_mask_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let tables = TABLE_BASE as usize..TABLE_BASE as usize + 64 * self.table_addrs.len();
        vec![tables, MEM_BYTES - STACK_MASK_BYTES..MEM_BYTES]
    }

    fn new_core(&self) -> Box<dyn Core> {
        match self.isa {
            CorpusIsa::Ppc => Box::new(codense_ppc::machine::Machine::new(MEM_BYTES)),
            CorpusIsa::Mips => Box::new(codense_mips::Machine::new(MEM_BYTES)),
        }
    }
}

fn clamp_modules(n: usize) -> usize {
    n.clamp(1, 4000)
}

/// Rough lowered-size estimate of one module; the proportional correction
/// pass absorbs the error.
fn estimate_module_insns(spec: &CorpusSpec) -> usize {
    let per_fn = 34 + 30 * spec.cold_weight as usize;
    (1 + INTERNALS + spec.dup) * per_fn
}

fn lower_ir(
    spec: &CorpusSpec,
    modules: usize,
    passes: u32,
    isa: CorpusIsa,
) -> Result<ObjectModule, BuildError> {
    let program = build_ir(spec, modules, passes);
    let options = LowerOptions { entry_stub: true, ..LowerOptions::default() };
    let lowered = match isa {
        CorpusIsa::Ppc => lower_program_with(&program, options).map_err(|e| e.to_string()),
        CorpusIsa::Mips => lower_program_mips_with(&program, options).map_err(|e| e.to_string()),
    };
    lowered.map_err(BuildError::Lower)
}

fn run_module(
    module: &ObjectModule,
    isa: CorpusIsa,
    max_steps: u64,
) -> Result<RunResult, MachineError> {
    let mut core: Box<dyn Core> = match isa {
        CorpusIsa::Ppc => Box::new(codense_ppc::machine::Machine::new(MEM_BYTES)),
        CorpusIsa::Mips => Box::new(codense_mips::Machine::new(MEM_BYTES)),
    };
    for (t, table) in module.jump_tables.iter().enumerate() {
        for (e, &target) in table.targets.iter().enumerate() {
            core.write32(TABLE_BASE + 64 * t as u32 + 4 * e as u32, 8 * target as u32)?;
        }
    }
    let mut fetch = LinearFetcher::new(module.code.clone());
    run(core.as_mut(), &mut fetch, 0, max_steps)
}

// ---- IR construction ------------------------------------------------------

/// Function-index layout: `0` main, `1..=groups` group dispatchers, then
/// modules of `1 + INTERNALS + dup` functions each (root, internal chain,
/// library copies). Every call goes to a strictly higher index, so the call
/// graph is a DAG and termination is structural.
struct Layout {
    groups: usize,
    modules: usize,
    fns_per_module: usize,
}

impl Layout {
    fn new(modules: usize, dup: usize) -> Layout {
        Layout { groups: modules.div_ceil(16), modules, fns_per_module: 1 + INTERNALS + dup }
    }

    fn module_base(&self, m: usize) -> u32 {
        (1 + self.groups + m * self.fns_per_module) as u32
    }

    fn root(&self, m: usize) -> u32 {
        self.module_base(m)
    }

    fn internal(&self, m: usize, k: usize) -> u32 {
        self.module_base(m) + 1 + k as u32
    }

    fn lib(&self, m: usize, t: usize) -> u32 {
        self.module_base(m) + 1 + INTERNALS as u32 + t as u32
    }
}

struct Gen {
    rng: Rng,
    cold_weight: u32,
    /// Jump tables emitted so far, counted in lowering encounter order
    /// (function index order, statement order) to respect the id budget.
    tables: usize,
}

fn build_ir(spec: &CorpusSpec, modules: usize, passes: u32) -> Program {
    let layout = Layout::new(modules, spec.dup);
    let mut g = Gen { rng: Rng::new(spec.seed), cold_weight: spec.cold_weight.max(1), tables: 0 };
    let lib_templates: Vec<Function> = (0..spec.dup).map(|t| lib_template(spec.seed, t)).collect();

    let mut functions = Vec::with_capacity(1 + layout.groups + modules * layout.fns_per_module);
    functions.push(main_fn(&layout, passes));
    for grp in 0..layout.groups {
        g.tables += 1; // the dispatcher's switch
        functions.push(group_fn(&layout, grp));
    }
    for m in 0..modules {
        functions.push(g.root_fn(&layout, m));
        for k in 0..INTERNALS {
            functions.push(g.internal_fn(&layout, m, k));
        }
        for t in &lib_templates {
            functions.push(t.clone());
        }
    }
    Program { name: format!("corpus-{}k", spec.insns / 1000), functions, globals: GLOBALS }
}

/// `main`: seed the checksum, run `passes` dispatch passes, each sweeping
/// the 16 dispatch slots through every group dispatcher, and return the
/// accumulated checksum as the exit code.
fn main_fn(layout: &Layout, passes: u32) -> Function {
    let acc = Local(0);
    let tmp = Local(1);
    let i = Local(2);
    let r = Local(3);
    let mut inner = Vec::with_capacity(2 * layout.groups);
    for grp in 0..layout.groups {
        inner.push(Stmt::AssignLocal(
            tmp,
            Expr::Call(
                FuncRef(1 + grp as u32),
                vec![Expr::Local(i, Width::Word), Expr::Local(acc, Width::Word)],
            ),
        ));
        let op = if grp % 2 == 0 { BinOp::Xor } else { BinOp::Add };
        inner.push(Stmt::AssignLocal(
            acc,
            Expr::Bin(
                op,
                Box::new(Expr::Local(acc, Width::Word)),
                Box::new(Expr::Local(tmp, Width::Word)),
            ),
        ));
    }
    let body = vec![
        Stmt::AssignLocal(acc, Expr::ConstWide(0x243F_6A88)),
        Stmt::For {
            var: r,
            from: 0,
            to: passes.min(20_000) as i16,
            body: vec![Stmt::For { var: i, from: 0, to: 16, body: inner }],
        },
        Stmt::Return(Some(Expr::Local(acc, Width::Word))),
    ];
    Function { name: "main".to_string(), params: 0, locals: 4, body }
}

/// Group dispatcher `grp`: a 16-way jump-table switch on the dispatch slot,
/// each case calling one module root of the group (wrapping into earlier
/// modules when the last group is partial).
fn group_fn(layout: &Layout, grp: usize) -> Function {
    let i = Local(0);
    let acc = Local(1);
    let sum = Local(2);
    let tmp = Local(3);
    let cases: Vec<Vec<Stmt>> = (0..16)
        .map(|c| {
            let m = (grp * 16 + c) % layout.modules;
            let op = if c % 2 == 0 { BinOp::Add } else { BinOp::Xor };
            vec![
                Stmt::AssignLocal(
                    tmp,
                    Expr::Call(
                        FuncRef(layout.root(m)),
                        vec![Expr::Local(i, Width::Word), Expr::Local(sum, Width::Word)],
                    ),
                ),
                Stmt::AssignLocal(
                    sum,
                    Expr::Bin(
                        op,
                        Box::new(Expr::Local(sum, Width::Word)),
                        Box::new(Expr::Local(tmp, Width::Word)),
                    ),
                ),
            ]
        })
        .collect();
    let body = vec![
        Stmt::AssignLocal(sum, Expr::Local(acc, Width::Word)),
        Stmt::Switch {
            scrutinee: Expr::Bin(
                BinOp::And,
                Box::new(Expr::Local(i, Width::Word)),
                Box::new(Expr::Const(15)),
            ),
            cases,
        },
        Stmt::Return(Some(Expr::Local(sum, Width::Word))),
    ];
    Function { name: format!("grp{grp}"), params: 2, locals: 4, body }
}

/// Identical in every module: the library layer. Template `t` is generated
/// from its own seed stream, so the body depends only on `(seed, t)` — the
/// per-module copies lower to byte-identical code.
fn lib_template(seed: u64, t: usize) -> Function {
    let mut rng = Rng::new(seed ^ 0x11B_0000 ^ (t as u64).wrapping_mul(0x9E37_79B9));
    let a = Local(0);
    let b = Local(1);
    let acc = Local(2);
    let lv = Local(3);
    let g1 = Global(1 + rng.below(200) as u16);
    let g2 = Global(1 + rng.below(200) as u16);
    let k1 = rng.below(0x7fff) as i16;
    let loop_body = vec![
        Stmt::AssignLocal(
            acc,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Local(acc, Width::Word)),
                Box::new(Expr::Bin(
                    BinOp::Shr(3),
                    Box::new(Expr::Local(acc, Width::Word)),
                    Box::new(Expr::Const(0)),
                )),
            ),
        ),
        Stmt::AssignLocal(
            acc,
            Expr::Bin(
                BinOp::Xor,
                Box::new(Expr::Local(acc, Width::Word)),
                Box::new(Expr::Local(a, Width::Word)),
            ),
        ),
    ];
    let body = vec![
        Stmt::AssignLocal(
            acc,
            Expr::Bin(
                BinOp::Xor,
                Box::new(Expr::Local(a, Width::Word)),
                Box::new(Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Local(b, Width::Word)),
                    Box::new(Expr::Const(k1)),
                )),
            ),
        ),
        Stmt::For { var: lv, from: 0, to: (3 + t % 5) as i16, body: loop_body },
        Stmt::If {
            cond: Cond {
                op: CmpOp::Lt,
                unsigned: true,
                lhs: Expr::Local(acc, Width::Word),
                rhs: Expr::Local(b, Width::Word),
                crf: 0,
            },
            then_: vec![Stmt::AssignLocal(
                acc,
                Expr::Bin(
                    BinOp::Mul,
                    Box::new(Expr::Local(acc, Width::Word)),
                    Box::new(Expr::Const(3)),
                ),
            )],
            els: vec![Stmt::AssignLocal(
                acc,
                Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Local(acc, Width::Word)),
                    Box::new(Expr::Const(7)),
                ),
            )],
        },
        Stmt::AssignGlobal(
            g2,
            Width::Word,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Global(g2, Width::Word)),
                Box::new(Expr::Local(acc, Width::Word)),
            ),
        ),
        Stmt::Return(Some(Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Local(acc, Width::Word)),
            Box::new(Expr::Global(g1, Width::Word)),
        ))),
    ];
    Function { name: format!("lib{t}"), params: 2, locals: 4, body }
}

impl Gen {
    /// Module root: hot arithmetic, an optional hot dispatch switch into
    /// the library layer, the internal-chain call, and a cold block.
    fn root_fn(&mut self, layout: &Layout, m: usize) -> Function {
        let i = Local(0);
        let acc = Local(1);
        let h = Local(2);
        let tmp = Local(4);
        let k = self.rng.below(0x4000) as i16;
        let mut body = vec![Stmt::AssignLocal(
            h,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Local(i, Width::Word)),
                Box::new(Expr::Bin(
                    BinOp::Xor,
                    Box::new(Expr::Local(acc, Width::Word)),
                    Box::new(Expr::Const(k)),
                )),
            ),
        )];
        if self.tables < HOT_TABLE_CEILING {
            self.tables += 1;
            let cases: Vec<Vec<Stmt>> = (0..8)
                .map(|c| {
                    let t = (c + m) % layout.fns_per_module.saturating_sub(1 + INTERNALS).max(1);
                    vec![
                        Stmt::AssignLocal(
                            tmp,
                            Expr::Call(
                                FuncRef(layout.lib(m, t)),
                                vec![Expr::Local(i, Width::Word), Expr::Local(h, Width::Word)],
                            ),
                        ),
                        Stmt::AssignLocal(
                            h,
                            Expr::Bin(
                                BinOp::Add,
                                Box::new(Expr::Local(h, Width::Word)),
                                Box::new(Expr::Local(tmp, Width::Word)),
                            ),
                        ),
                    ]
                })
                .collect();
            body.push(Stmt::Switch {
                scrutinee: Expr::Bin(
                    BinOp::And,
                    Box::new(Expr::Local(i, Width::Word)),
                    Box::new(Expr::Const(7)),
                ),
                cases,
            });
        }
        body.push(Stmt::AssignLocal(
            tmp,
            Expr::Call(
                FuncRef(layout.internal(m, 0)),
                vec![Expr::Local(i, Width::Word), Expr::Local(h, Width::Word)],
            ),
        ));
        body.push(Stmt::AssignLocal(
            h,
            Expr::Bin(
                BinOp::Xor,
                Box::new(Expr::Local(h, Width::Word)),
                Box::new(Expr::Local(tmp, Width::Word)),
            ),
        ));
        body.push(self.cold_block(layout, m));
        body.push(Stmt::Return(Some(Expr::Local(h, Width::Word))));
        Function { name: format!("m{m}_root"), params: 2, locals: 6, body }
    }

    /// Module-internal helper `k`: hot loop + arithmetic, a link to the
    /// next helper in the chain, library calls, and a cold block.
    fn internal_fn(&mut self, layout: &Layout, m: usize, k: usize) -> Function {
        let x = Local(0);
        let y = Local(1);
        let acc = Local(2);
        let lv = Local(3);
        let tmp = Local(4);
        let c1 = self.rng.below(0x4000) as i16;
        let mut body = vec![
            Stmt::AssignLocal(
                acc,
                Expr::Bin(
                    BinOp::Xor,
                    Box::new(Expr::Local(x, Width::Word)),
                    Box::new(Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Local(y, Width::Word)),
                        Box::new(Expr::Const(c1)),
                    )),
                ),
            ),
            Stmt::For {
                var: lv,
                from: 0,
                to: 2 + self.rng.below(4) as i16,
                body: vec![Stmt::AssignLocal(
                    acc,
                    Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Local(acc, Width::Word)),
                        Box::new(Expr::Bin(
                            BinOp::Shr(5),
                            Box::new(Expr::Local(acc, Width::Word)),
                            Box::new(Expr::Const(0)),
                        )),
                    ),
                )],
            },
        ];
        if k + 1 < INTERNALS {
            body.push(Stmt::AssignLocal(
                tmp,
                Expr::Call(
                    FuncRef(layout.internal(m, k + 1)),
                    vec![Expr::Local(acc, Width::Word), Expr::Local(y, Width::Word)],
                ),
            ));
            body.push(Stmt::AssignLocal(
                acc,
                Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Local(acc, Width::Word)),
                    Box::new(Expr::Local(tmp, Width::Word)),
                ),
            ));
        }
        for _ in 0..1 + self.rng.below(2) {
            let t = self.rng.below(layout.fns_per_module - 1 - INTERNALS);
            body.push(Stmt::AssignLocal(
                tmp,
                Expr::Call(
                    FuncRef(layout.lib(m, t)),
                    vec![Expr::Local(acc, Width::Word), Expr::Local(x, Width::Word)],
                ),
            ));
            body.push(Stmt::AssignLocal(
                acc,
                Expr::Bin(
                    BinOp::Xor,
                    Box::new(Expr::Local(acc, Width::Word)),
                    Box::new(Expr::Local(tmp, Width::Word)),
                ),
            ));
        }
        body.push(self.cold_block(layout, m));
        body.push(Stmt::Return(Some(Expr::Local(acc, Width::Word))));
        Function { name: format!("m{m}_f{k}"), params: 2, locals: 6, body }
    }

    /// The cold error path: statically rich, dynamically dead. Guarded on
    /// global 0, which no corpus program ever writes — zero-initialized
    /// memory keeps the guard false forever, so everything inside is
    /// compressed and fetched through coverage sweeps but never executed.
    fn cold_block(&mut self, layout: &Layout, m: usize) -> Stmt {
        let n = (3 + self.rng.below(4)) * self.cold_weight as usize;
        let mut stmts = Vec::with_capacity(n);
        for _ in 0..n {
            stmts.push(self.cold_stmt(layout, m, 0));
        }
        Stmt::If {
            cond: Cond {
                op: CmpOp::Ne,
                unsigned: false,
                lhs: Expr::Global(Global(0), Width::Word),
                rhs: Expr::Const(0),
                crf: 0,
            },
            then_: stmts,
            els: Vec::new(),
        }
    }

    fn cold_stmt(&mut self, layout: &Layout, m: usize, depth: usize) -> Stmt {
        let can_switch = depth == 0 && self.tables < COLD_TABLE_CEILING;
        let weights: &[u32] = if can_switch {
            &[4, 2, 2, 1, 2] // assign-global, store, if, switch, call
        } else {
            &[4, 2, 2, 0, 2]
        };
        match self.rng.weighted(weights) {
            0 => {
                let g = Global(1 + self.rng.below((GLOBALS - 1) as usize) as u16);
                let w = *self.rng.pick(&[Width::Byte, Width::Half, Width::Word]);
                Stmt::AssignGlobal(g, w, self.cold_expr(2))
            }
            1 => Stmt::StoreIndex {
                base: Local(5),
                index: Expr::Const(self.rng.below(64) as i16),
                width: *self.rng.pick(&[Width::Byte, Width::Word]),
                value: self.cold_expr(2),
            },
            2 => {
                let inner = (1..=2 + self.rng.below(2))
                    .map(|_| self.cold_stmt(layout, m, depth + 1))
                    .collect();
                Stmt::If {
                    cond: Cond {
                        op: *self.rng.pick(&[CmpOp::Lt, CmpOp::Gt, CmpOp::Eq, CmpOp::Ne]),
                        unsigned: self.rng.below(2) == 0,
                        lhs: self.cold_expr(1),
                        rhs: Expr::Const(self.rng.below(100) as i16),
                        crf: (self.rng.below(2)) as u8,
                    },
                    then_: inner,
                    els: Vec::new(),
                }
            }
            3 => {
                self.tables += 1;
                let ncases = 4 + self.rng.below(5);
                let cases =
                    (0..ncases).map(|_| vec![self.cold_stmt(layout, m, depth + 1)]).collect();
                Stmt::Switch {
                    scrutinee: Expr::Bin(
                        BinOp::And,
                        Box::new(self.cold_expr(1)),
                        Box::new(Expr::Const(ncases as i16 - 1)),
                    ),
                    cases,
                }
            }
            _ => {
                let t = self.rng.below(layout.fns_per_module - 1 - INTERNALS);
                Stmt::Call(
                    FuncRef(layout.lib(m, t)),
                    vec![self.cold_expr(1), Expr::Const(self.rng.below(50) as i16)],
                )
            }
        }
    }

    fn cold_expr(&mut self, depth: usize) -> Expr {
        if depth == 0 {
            return match self.rng.below(4) {
                0 => Expr::Const(self.rng.below(0x7fff) as i16),
                1 => Expr::ConstWide(self.rng.next_u64() as i32),
                2 => Expr::Local(Local(2 + self.rng.below(3) as u16), Width::Word),
                _ => Expr::Global(
                    Global(1 + self.rng.below((GLOBALS - 1) as usize) as u16),
                    Width::Word,
                ),
            };
        }
        match self.rng.below(3) {
            0 => Expr::Bin(
                *self.rng.pick(&[BinOp::Add, BinOp::Sub, BinOp::Xor, BinOp::Or, BinOp::And]),
                Box::new(self.cold_expr(depth - 1)),
                Box::new(self.cold_expr(0)),
            ),
            1 => Expr::Bin(
                BinOp::Shr(1 + self.rng.below(7) as u8),
                Box::new(self.cold_expr(depth - 1)),
                Box::new(Expr::Const(0)),
            ),
            _ => self.cold_expr(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CorpusSpec {
        CorpusSpec { insns: 10_000, dynamic_target: 150_000, ..CorpusSpec::default() }
    }

    #[test]
    fn build_is_deterministic() {
        let a = build(&small_spec(), CorpusIsa::Ppc).unwrap();
        let b = build(&small_spec(), CorpusIsa::Ppc).unwrap();
        assert_eq!(a.module.code, b.module.code);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn static_size_lands_near_target() {
        for isa in [CorpusIsa::Ppc, CorpusIsa::Mips] {
            let p = build(&small_spec(), isa).unwrap();
            let insns = p.stats.insns;
            assert!(
                (7_000..=13_000).contains(&insns),
                "{}: {insns} insns for a 10k target",
                isa.name()
            );
        }
    }

    #[test]
    fn runs_and_halts_with_recorded_checksum() {
        for isa in [CorpusIsa::Ppc, CorpusIsa::Mips] {
            let p = build(&small_spec(), isa).unwrap();
            let r = p.run_native(p.stats.dynamic_insns + 10).unwrap();
            assert_eq!(r.steps, p.stats.dynamic_insns, "{}", isa.name());
            assert_eq!(r.exit_code, p.stats.exit_code, "{}", isa.name());
        }
    }

    #[test]
    fn dynamic_size_tracks_target() {
        let p = build(&small_spec(), CorpusIsa::Ppc).unwrap();
        // Pass-count calibration: within a factor of two of the request
        // (one pass is the quantum).
        assert!(p.stats.dynamic_insns >= 75_000, "{}", p.stats.dynamic_insns);
        assert!(p.stats.dynamic_insns <= 400_000, "{}", p.stats.dynamic_insns);
    }

    #[test]
    fn duplication_knob_changes_code_not_behaviour() {
        let base = build(&small_spec(), CorpusIsa::Ppc).unwrap();
        let solo = build(&CorpusSpec { dup: 1, ..small_spec() }, CorpusIsa::Ppc).unwrap();
        assert_ne!(base.module.code, solo.module.code);
        assert!(base.stats.functions > solo.stats.functions);
    }

    #[test]
    fn seeds_differ() {
        let a = build(&small_spec(), CorpusIsa::Ppc).unwrap();
        let b = build(&CorpusSpec { seed: 7, ..small_spec() }, CorpusIsa::Ppc).unwrap();
        assert_ne!(a.module.code, b.module.code);
    }

    #[test]
    fn table_budget_is_respected() {
        let p = build(&small_spec(), CorpusIsa::Ppc).unwrap();
        assert!(p.stats.jump_tables <= 511, "{}", p.stats.jump_tables);
        for t in &p.module.jump_tables {
            assert!(t.targets.len() <= 16);
        }
    }
}
