//! Corpus programs hold under the differential oracle: every encoding,
//! both ISAs, full-trace equivalence between native and compressed runs.

use codense_core::{CompressionConfig, Compressor};
use codense_corpus::{build, CorpusIsa, CorpusSpec, MEM_BYTES};
use codense_fuzz::{lockstep, lockstep_mips, LockstepOk, TraceMask};
use codense_isa::IsaRef;

fn spec() -> CorpusSpec {
    CorpusSpec { insns: 4_000, dynamic_target: 40_000, ..CorpusSpec::default() }
}

fn encodings() -> [(&'static str, CompressionConfig); 4] {
    [
        ("baseline", CompressionConfig::baseline()),
        ("one-byte", CompressionConfig::small_dictionary(32)),
        ("nibble", CompressionConfig::nibble_aligned()),
        ("huffman", CompressionConfig::huffman()),
    ]
}

#[test]
fn corpus_lockstep_ppc_all_encodings() {
    let p = build(&spec(), CorpusIsa::Ppc).expect("build");
    let mask =
        TraceMask { mem_skip: p.mem_mask_ranges(), ..TraceMask::skipping_gprs(p.mask_gprs()) };
    for (label, config) in encodings() {
        let compressed = Compressor::new(config).compress(&p.module).expect(label);
        let ok = lockstep(
            &p.module,
            &compressed,
            &p.table_addrs,
            &|_| {},
            &mask,
            MEM_BYTES,
            p.stats.dynamic_insns + 10,
        )
        .unwrap_or_else(|d| panic!("{label}: {d:?}"));
        match ok {
            LockstepOk::Completed { steps, exit } => {
                assert_eq!(steps, p.stats.dynamic_insns, "{label}");
                assert_eq!(exit, p.stats.exit_code, "{label}");
            }
            other => panic!("{label}: expected Completed, got {other:?}"),
        }
    }
}

#[test]
fn corpus_lockstep_mips_all_encodings() {
    let p = build(&spec(), CorpusIsa::Mips).expect("build");
    let mask =
        TraceMask { mem_skip: p.mem_mask_ranges(), ..TraceMask::skipping_gprs(p.mask_gprs()) };
    for (label, config) in encodings() {
        let compressed = Compressor::new(config)
            .with_isa(IsaRef(&codense_mips::ISA))
            .compress(&p.module)
            .expect(label);
        let ok = lockstep_mips(
            &p.module,
            &compressed,
            &p.table_addrs,
            &mask,
            MEM_BYTES,
            p.stats.dynamic_insns + 10,
        )
        .unwrap_or_else(|d| panic!("{label}: {d:?}"));
        match ok {
            LockstepOk::Completed { steps, exit } => {
                assert_eq!(steps, p.stats.dynamic_insns, "{label}");
                assert_eq!(exit, p.stats.exit_code, "{label}");
            }
            other => panic!("{label}: expected Completed, got {other:?}"),
        }
    }
}

/// The predecoded threaded-dispatch loop is observably identical to the
/// re-parsing engine on corpus programs: same halt, same step count, same
/// cumulative fetch counters, identical final machine with no masking (both
/// engines run in the compressed fetch domain, so even link values agree).
#[test]
fn corpus_predecoded_matches_reparse_ppc() {
    use codense_vm::{run, run_predecoded, CompressedFetcher, PredecodedFetcher};

    let p = build(&spec(), CorpusIsa::Ppc).expect("build");
    for (label, config) in encodings() {
        let compressed = Compressor::new(config).compress(&p.module).expect(label);

        let mut rm = codense_ppc::machine::Machine::new(MEM_BYTES);
        seed_compressed_tables(&mut rm.mem, &p, &compressed);
        let mut ref_fetch = CompressedFetcher::new(&compressed);
        let reference = run(&mut rm, &mut ref_fetch, 0, p.stats.dynamic_insns + 10).expect(label);
        assert_eq!(reference.exit_code, p.stats.exit_code, "{label}");

        let mut gm = codense_ppc::machine::Machine::new(MEM_BYTES);
        seed_compressed_tables(&mut gm.mem, &p, &compressed);
        let mut fetch = PredecodedFetcher::new(&compressed);
        let got = run_predecoded(&mut gm, &mut fetch, 0, p.stats.dynamic_insns + 10).expect(label);

        assert_eq!(got, reference, "{label}: run result");
        assert_eq!(gm.gpr, rm.gpr, "{label}: gpr");
        assert_eq!((gm.lr, gm.ctr, gm.cr, gm.ca), (rm.lr, rm.ctr, rm.cr, rm.ca), "{label}");
        assert_eq!(gm.mem, rm.mem, "{label}: memory");
    }
}

/// MIPS counterpart of [`corpus_predecoded_matches_reparse_ppc`].
#[test]
fn corpus_predecoded_matches_reparse_mips() {
    use codense_vm::{run, run_predecoded, CompressedFetcher, PredecodedFetcher};

    let p = build(&spec(), CorpusIsa::Mips).expect("build");
    for (label, config) in encodings() {
        let compressed = Compressor::new(config)
            .with_isa(IsaRef(&codense_mips::ISA))
            .compress(&p.module)
            .expect(label);

        let mut rm = codense_mips::Machine::new(MEM_BYTES);
        seed_compressed_tables(&mut rm.mem, &p, &compressed);
        let mut ref_fetch = CompressedFetcher::new(&compressed);
        let reference = run(&mut rm, &mut ref_fetch, 0, p.stats.dynamic_insns + 10).expect(label);
        assert_eq!(reference.exit_code, p.stats.exit_code, "{label}");

        let mut gm = codense_mips::Machine::new(MEM_BYTES);
        seed_compressed_tables(&mut gm.mem, &p, &compressed);
        let mut fetch = PredecodedFetcher::new(&compressed);
        let got = run_predecoded(&mut gm, &mut fetch, 0, p.stats.dynamic_insns + 10).expect(label);

        assert_eq!(got, reference, "{label}: run result");
        assert_eq!(gm.gpr, rm.gpr, "{label}: gpr");
        assert_eq!(gm.mem, rm.mem, "{label}: memory");
    }
}

/// Seeds a machine's jump-table region with the *image's* patched
/// (compressed-domain) entries — both engines under test run the same
/// image, so both machines get identical values.
fn seed_compressed_tables(
    mem: &mut [u8],
    p: &codense_corpus::CorpusProgram,
    compressed: &codense_core::CompressedProgram,
) {
    for (t, table) in compressed.jump_tables.iter().enumerate() {
        for (e, &target) in table.iter().enumerate() {
            let a = (p.table_addrs[t] + 4 * e as u32) as usize;
            mem[a..a + 4].copy_from_slice(&(target as u32).to_be_bytes());
        }
    }
}
