#![warn(missing_docs)]

//! CCRP baseline: the Compressed Code RISC Processor of Wolfe & Chanin
//! (MICRO-25, 1992), as described in §2.3 of the reproduced paper.
//!
//! CCRP Huffman-compresses each instruction-cache line independently at
//! compile time; at run time, missed lines are fetched from main memory,
//! decompressed, and installed in the cache at their *uncompressed*
//! addresses. Because compressed lines land at unpredictable main-memory
//! addresses, a Line Address Table (LAT) maps line numbers to compressed
//! locations.
//!
//! The reproduced paper contrasts its scheme with CCRP on two axes this
//! model captures:
//!
//! * CCRP "compresses on the granularity of bytes rather than full
//!   instructions", so it pays per-byte decode work and achieves byte-level
//!   (statistical) compression;
//! * CCRP needs the LAT, whereas the dictionary scheme patches branches
//!   instead.
//!
//! # Example
//!
//! ```
//! let module = codense_codegen::benchmark("compress").unwrap();
//! let c = codense_ccrp::compress(&module, codense_ccrp::CcrpConfig::default());
//! assert!(c.compression_ratio() < 1.0);
//! let line0 = c.decompress_line(0).unwrap();
//! assert_eq!(line0, &module.text_image()[..c.config().line_bytes]);
//! ```

use codense_huffman::{byte_frequencies, HuffmanCode};
use codense_obj::ObjectModule;

/// CCRP parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcrpConfig {
    /// Cache line size in bytes (Wolfe & Chanin evaluate 32-byte lines).
    pub line_bytes: usize,
    /// Bytes per Line Address Table entry. A full pointer is 4; Wolfe's
    /// compacted LAT stores one base pointer plus packed offsets per line
    /// group, averaging closer to 1 — configurable so both ends can be
    /// studied.
    pub lat_entry_bytes: usize,
}

impl Default for CcrpConfig {
    fn default() -> CcrpConfig {
        CcrpConfig { line_bytes: 32, lat_entry_bytes: 4 }
    }
}

/// A CCRP-compressed program image.
#[derive(Debug, Clone)]
pub struct CcrpCompressed {
    config: CcrpConfig,
    /// The byte-Huffman code (built from whole-program byte frequencies).
    code: HuffmanCode,
    /// Each line's compressed bytes (byte-aligned, as the hardware requires
    /// random access per line).
    lines: Vec<Vec<u8>>,
    /// Uncompressed byte length of each line (the final line may be short).
    line_lens: Vec<usize>,
    /// Original text size in bytes.
    original_bytes: usize,
}

/// Compresses a module's text image line by line.
pub fn compress(module: &ObjectModule, config: CcrpConfig) -> CcrpCompressed {
    let image = module.text_image();
    let code = HuffmanCode::from_frequencies(&byte_frequencies(&image));
    let mut lines = Vec::new();
    let mut line_lens = Vec::new();
    for chunk in image.chunks(config.line_bytes.max(1)) {
        lines.push(codense_huffman::encode(&code, chunk));
        line_lens.push(chunk.len());
    }
    CcrpCompressed { config, code, lines, line_lens, original_bytes: image.len() }
}

impl CcrpCompressed {
    /// The configuration used.
    pub fn config(&self) -> &CcrpConfig {
        &self.config
    }

    /// Number of cache lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Total compressed text bytes (every line byte-aligned).
    pub fn compressed_text_bytes(&self) -> usize {
        self.lines.iter().map(Vec::len).sum()
    }

    /// Line Address Table size in bytes.
    pub fn lat_bytes(&self) -> usize {
        self.lines.len() * self.config.lat_entry_bytes
    }

    /// Size of the transmissible Huffman model (canonical code lengths).
    pub fn model_bytes(&self) -> usize {
        256
    }

    /// Compression ratio including LAT and model overhead (comparable to
    /// the dictionary scheme's ratio, which includes its dictionary).
    pub fn compression_ratio(&self) -> f64 {
        (self.compressed_text_bytes() + self.lat_bytes() + self.model_bytes()) as f64
            / self.original_bytes as f64
    }

    /// Decompresses one line (what the cache-miss path does).
    ///
    /// Returns `None` for an out-of-range line or a corrupt stream.
    pub fn decompress_line(&self, line: usize) -> Option<Vec<u8>> {
        let bits = self.lines.get(line)?;
        codense_huffman::decode(&self.code, bits, self.line_lens[line])
    }

    /// Decompresses the whole image (for verification).
    pub fn decompress_all(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(self.original_bytes);
        for i in 0..self.lines.len() {
            out.extend_from_slice(&self.decompress_line(i)?);
        }
        Some(out)
    }
}

/// Compression ratio across cache-line sizes — Wolfe & Chanin's central
/// trade-off: longer lines amortize Huffman padding (better ratio) but cost
/// more per-miss decompression latency.
pub fn line_size_sweep(module: &ObjectModule, line_sizes: &[usize]) -> Vec<(usize, f64)> {
    line_sizes
        .iter()
        .map(|&line_bytes| {
            let c = compress(module, CcrpConfig { line_bytes, lat_entry_bytes: 4 });
            (line_bytes, c.compression_ratio())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_ppc::encode as enc;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    fn module() -> ObjectModule {
        let mut m = ObjectModule::new("t");
        for i in 0..200 {
            m.code.push(enc(&Insn::Addi { rt: R3, ra: R3, si: (i % 5) as i16 }));
            m.code.push(enc(&Insn::Lwz { rt: R9, ra: R1, d: 8 }));
        }
        m
    }

    #[test]
    fn roundtrip_whole_image() {
        let m = module();
        let c = compress(&m, CcrpConfig::default());
        assert_eq!(c.decompress_all().unwrap(), m.text_image());
    }

    #[test]
    fn lines_are_independent() {
        let m = module();
        let c = compress(&m, CcrpConfig::default());
        let img = m.text_image();
        let line = c.line_count() / 2;
        let got = c.decompress_line(line).unwrap();
        assert_eq!(got, &img[line * 32..line * 32 + 32]);
        assert_eq!(c.decompress_line(c.line_count()), None);
    }

    #[test]
    fn ratio_includes_lat_and_model() {
        let m = module();
        let c = compress(&m, CcrpConfig::default());
        let ratio = c.compression_ratio();
        let text_only = c.compressed_text_bytes() as f64 / m.text_bytes() as f64;
        assert!(ratio > text_only);
        assert!(ratio < 1.0, "redundant code should compress: {ratio}");
    }

    #[test]
    fn smaller_lat_entries_improve_ratio() {
        let m = module();
        let fat = compress(&m, CcrpConfig { line_bytes: 32, lat_entry_bytes: 4 });
        let thin = compress(&m, CcrpConfig { line_bytes: 32, lat_entry_bytes: 1 });
        assert!(thin.compression_ratio() < fat.compression_ratio());
    }

    #[test]
    fn longer_lines_compress_better() {
        let m = module();
        let sweep = line_size_sweep(&m, &[8, 16, 32, 64, 128]);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 + 0.01,
                "padding + LAT amortization should improve with line size: {sweep:?}"
            );
        }
    }

    #[test]
    fn short_final_line_handled() {
        let mut m = ObjectModule::new("t");
        m.code = vec![enc(&Insn::Sc); 9]; // 36 bytes: one full + one short line
        let c = compress(&m, CcrpConfig::default());
        assert_eq!(c.line_count(), 2);
        assert_eq!(c.decompress_all().unwrap(), m.text_image());
    }
}
