//! The [`ObjectModule`] program image and its validation.

use std::fmt;
use std::ops::Range;

use codense_isa::IsaRef;

/// Metadata for one function in the text section.
///
/// Instruction positions are *indices* into [`ObjectModule::code`] (byte
/// address = 4 × index in the uncompressed program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionInfo {
    /// Symbol name.
    pub name: String,
    /// Index of the first instruction.
    pub start: usize,
    /// Index one past the last instruction.
    pub end: usize,
    /// Number of prologue instructions at `start` (0 for leaf functions
    /// that allocate no frame).
    pub prologue_len: usize,
    /// Instruction ranges of the epilogue(s); a function with several return
    /// paths has several.
    pub epilogues: Vec<Range<usize>>,
}

impl FunctionInfo {
    /// Total instructions in the function body.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` for a degenerate empty range.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Instructions belonging to the prologue.
    pub fn prologue_range(&self) -> Range<usize> {
        self.start..self.start + self.prologue_len
    }

    /// Total epilogue instruction count.
    pub fn epilogue_insns(&self) -> usize {
        self.epilogues.iter().map(|r| r.len()).sum()
    }
}

/// A jump table held in `.data`: a vector of code addresses used by an
/// indirect `bctr` dispatch (switch statements).
///
/// The paper assumes GCC's in-text jump tables "could be relocated to the
/// .data section and patched with the post-compression branch target
/// addresses" (§3.2.1); this type is that relocated representation. Each
/// entry is an instruction index; its in-memory size is 4 bytes per entry in
/// both the original and compressed program (addresses are re-encoded, not
/// resized).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JumpTable {
    /// Target instruction indices, one per case.
    pub targets: Vec<usize>,
}

impl JumpTable {
    /// Size of the table in bytes (4 per entry).
    pub fn size_bytes(&self) -> usize {
        self.targets.len() * 4
    }
}

/// Validation failures for an [`ObjectModule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleError {
    /// A PC-relative branch at `at` targets an instruction index outside the
    /// text section.
    BranchOutOfRange {
        /// Index of the offending branch.
        at: usize,
        /// The (possibly negative or overflowing) target index.
        target: i64,
    },
    /// A relative branch target is not word-aligned.
    MisalignedBranch {
        /// Index of the offending branch.
        at: usize,
    },
    /// A jump-table entry points outside the text section.
    JumpTableOutOfRange {
        /// Index of the table.
        table: usize,
        /// Index of the entry within the table.
        entry: usize,
    },
    /// A function range is empty, inverted, or extends past the text section.
    BadFunctionRange {
        /// Name of the offending function.
        name: String,
    },
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::BranchOutOfRange { at, target } => {
                write!(f, "branch at instruction {at} targets out-of-range index {target}")
            }
            ModuleError::MisalignedBranch { at } => {
                write!(f, "branch at instruction {at} has a misaligned target")
            }
            ModuleError::JumpTableOutOfRange { table, entry } => {
                write!(f, "jump table {table} entry {entry} is out of range")
            }
            ModuleError::BadFunctionRange { name } => {
                write!(f, "function `{name}` has an invalid instruction range")
            }
        }
    }
}

impl std::error::Error for ModuleError {}

/// A statically linked program: `.text` plus compressor-relevant metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectModule {
    /// Program name (benchmark name in the reproduction).
    pub name: String,
    /// The text section as instruction words; instruction `i` lives at byte
    /// address `4 * i`.
    pub code: Vec<u32>,
    /// Function layout metadata, sorted by `start`.
    pub functions: Vec<FunctionInfo>,
    /// Jump tables referenced by indirect branches (held in `.data`).
    pub jump_tables: Vec<JumpTable>,
}

impl ObjectModule {
    /// Creates an empty module with the given name.
    pub fn new(name: impl Into<String>) -> ObjectModule {
        ObjectModule { name: name.into(), ..ObjectModule::default() }
    }

    /// Number of instructions in `.text`.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Returns `true` if the text section is empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Size of `.text` in bytes.
    pub fn text_bytes(&self) -> usize {
        self.code.len() * 4
    }

    /// The text section serialized as big-endian bytes (for byte-granular
    /// compressors such as LZW and CCRP).
    pub fn text_image(&self) -> Vec<u8> {
        codense_ppc::words_to_bytes(&self.code)
    }

    /// The instruction-index target of the PC-relative branch at `at`, if
    /// the instruction is one (PowerPC decoding; see
    /// [`branch_target_with`](Self::branch_target_with)).
    pub fn branch_target(&self, at: usize) -> Option<usize> {
        self.branch_target_with(IsaRef(&codense_ppc::ISA), at)
    }

    /// The instruction-index target of the PC-relative branch at `at` under
    /// `isa`, if the instruction is one.
    pub fn branch_target_with(&self, isa: IsaRef, at: usize) -> Option<usize> {
        let info = isa.rel_branch_info(self.code[at])?;
        let target = at as i64 + info.offset as i64 / 4;
        debug_assert!(target >= 0 && (target as usize) < self.code.len());
        Some(target as usize)
    }

    /// Checks internal consistency under PowerPC decoding (see
    /// [`validate_with`](Self::validate_with)).
    ///
    /// # Errors
    ///
    /// Returns the first [`ModuleError`] encountered.
    pub fn validate(&self) -> Result<(), ModuleError> {
        self.validate_with(IsaRef(&codense_ppc::ISA))
    }

    /// Checks internal consistency under `isa`: every relative branch and
    /// jump-table entry targets a valid, aligned instruction, and function
    /// ranges are sane.
    ///
    /// # Errors
    ///
    /// Returns the first [`ModuleError`] encountered.
    pub fn validate_with(&self, isa: IsaRef) -> Result<(), ModuleError> {
        for (i, &w) in self.code.iter().enumerate() {
            if let Some(info) = isa.rel_branch_info(w) {
                if info.offset % 4 != 0 {
                    return Err(ModuleError::MisalignedBranch { at: i });
                }
                let target = i as i64 + (info.offset / 4) as i64;
                if target < 0 || target as usize >= self.code.len() {
                    return Err(ModuleError::BranchOutOfRange { at: i, target });
                }
            }
        }
        for (t, table) in self.jump_tables.iter().enumerate() {
            for (e, &idx) in table.targets.iter().enumerate() {
                if idx >= self.code.len() {
                    return Err(ModuleError::JumpTableOutOfRange { table: t, entry: e });
                }
            }
        }
        for func in &self.functions {
            let bad = func.start >= func.end
                || func.end > self.code.len()
                || func.start + func.prologue_len > func.end
                || func.epilogues.iter().any(|r| r.start < func.start || r.end > func.end);
            if bad {
                return Err(ModuleError::BadFunctionRange { name: func.name.clone() });
            }
        }
        Ok(())
    }

    /// All jump-table bytes (the `.data` footprint the compressor must carry
    /// through and patch).
    pub fn jump_table_bytes(&self) -> usize {
        self.jump_tables.iter().map(JumpTable::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_ppc::encode;
    use codense_ppc::insn::{bo, Insn};
    use codense_ppc::reg::*;

    fn nop() -> u32 {
        encode(&Insn::Ori { ra: R0, rs: R0, ui: 0 })
    }

    fn module_with_branch(offset: i16) -> ObjectModule {
        let mut m = ObjectModule::new("t");
        m.code = vec![
            nop(),
            encode(&Insn::Bc { bo: bo::IF_TRUE, bi: 2, bd: offset, aa: false, lk: false }),
            nop(),
            nop(),
        ];
        m
    }

    #[test]
    fn branch_targets_resolve() {
        let m = module_with_branch(8);
        assert_eq!(m.branch_target(1), Some(3));
        assert_eq!(m.branch_target(0), None);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn out_of_range_branch_detected() {
        let m = module_with_branch(128);
        assert_eq!(m.validate(), Err(ModuleError::BranchOutOfRange { at: 1, target: 33 }));
        let m = module_with_branch(-8);
        assert_eq!(m.validate(), Err(ModuleError::BranchOutOfRange { at: 1, target: -1 }));
    }

    #[test]
    fn jump_table_bounds_checked() {
        let mut m = ObjectModule::new("t");
        m.code = vec![nop(); 4];
        m.jump_tables.push(JumpTable { targets: vec![0, 3] });
        assert!(m.validate().is_ok());
        m.jump_tables.push(JumpTable { targets: vec![4] });
        assert_eq!(m.validate(), Err(ModuleError::JumpTableOutOfRange { table: 1, entry: 0 }));
    }

    #[test]
    fn function_ranges_checked() {
        let mut m = ObjectModule::new("t");
        m.code = vec![nop(); 8];
        m.functions.push(FunctionInfo {
            name: "f".into(),
            start: 0,
            end: 8,
            prologue_len: 2,
            epilogues: std::iter::once(6..8).collect(),
        });
        assert!(m.validate().is_ok());
        m.functions[0].end = 9;
        assert!(matches!(m.validate(), Err(ModuleError::BadFunctionRange { .. })));
    }

    #[test]
    fn sizes() {
        let mut m = ObjectModule::new("t");
        m.code = vec![nop(); 10];
        m.jump_tables.push(JumpTable { targets: vec![0, 1, 2] });
        assert_eq!(m.text_bytes(), 40);
        assert_eq!(m.jump_table_bytes(), 12);
        assert_eq!(m.text_image().len(), 40);
    }
}
