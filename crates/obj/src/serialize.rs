//! Binary serialization for [`ObjectModule`] — the `.cdm` module format the
//! command-line tools exchange (a minimal stand-in for the ELF objects a
//! real post-compilation compressor would read).
//!
//! Layout (big-endian):
//!
//! ```text
//! "CDNM"         magic
//! u16            version (1)
//! u16            reserved (0)
//! u16 + bytes    name
//! u32 + u32×n    text words
//! u32            function count
//!   per function: u16+bytes name, u32 start, u32 end, u32 prologue_len,
//!                 u16 epilogue count, (u32 start, u32 end) per epilogue
//! u32            jump-table count
//!   per table: u32 entry count, u32 targets
//! u32            CRC-32 of everything above
//! ```

use crate::module::{FunctionInfo, JumpTable, ObjectModule};

/// Magic bytes of the module format.
pub const MAGIC: [u8; 4] = *b"CDNM";
/// Current version.
pub const VERSION: u16 = 1;

pub use crate::crc32::crc32;

/// Module-format errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializeError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// Shorter than its fields claim.
    Truncated,
    /// Trailing CRC mismatch.
    ChecksumMismatch,
    /// Embedded string is not UTF-8.
    BadString,
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::BadMagic => write!(f, "not a codense module (bad magic)"),
            SerializeError::BadVersion(v) => write!(f, "unsupported module version {v}"),
            SerializeError::Truncated => write!(f, "module file truncated"),
            SerializeError::ChecksumMismatch => write!(f, "module checksum mismatch"),
            SerializeError::BadString => write!(f, "malformed string in module"),
        }
    }
}

impl std::error::Error for SerializeError {}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Serializes a module to `.cdm` bytes.
pub fn serialize(module: &ObjectModule) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes());
    put_str(&mut out, &module.name);
    out.extend_from_slice(&(module.code.len() as u32).to_be_bytes());
    for &w in &module.code {
        out.extend_from_slice(&w.to_be_bytes());
    }
    out.extend_from_slice(&(module.functions.len() as u32).to_be_bytes());
    for f in &module.functions {
        put_str(&mut out, &f.name);
        out.extend_from_slice(&(f.start as u32).to_be_bytes());
        out.extend_from_slice(&(f.end as u32).to_be_bytes());
        out.extend_from_slice(&(f.prologue_len as u32).to_be_bytes());
        out.extend_from_slice(&(f.epilogues.len() as u16).to_be_bytes());
        for e in &f.epilogues {
            out.extend_from_slice(&(e.start as u32).to_be_bytes());
            out.extend_from_slice(&(e.end as u32).to_be_bytes());
        }
    }
    out.extend_from_slice(&(module.jump_tables.len() as u32).to_be_bytes());
    for t in &module.jump_tables {
        out.extend_from_slice(&(t.targets.len() as u32).to_be_bytes());
        for &idx in &t.targets {
            out.extend_from_slice(&(idx as u32).to_be_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SerializeError> {
        let end = self.pos.checked_add(n).ok_or(SerializeError::Truncated)?;
        if end > self.data.len() {
            return Err(SerializeError::Truncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, SerializeError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, SerializeError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn string(&mut self) -> Result<String, SerializeError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SerializeError::BadString)
    }
}

/// Deserializes and integrity-checks a `.cdm` module.
///
/// # Errors
///
/// Returns a [`SerializeError`] on structural or checksum failure.
pub fn deserialize(data: &[u8]) -> Result<ObjectModule, SerializeError> {
    if data.len() < 12 {
        return Err(SerializeError::Truncated);
    }
    let (payload, crc_bytes) = data.split_at(data.len() - 4);
    let stored = u32::from_be_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(payload) != stored {
        return Err(SerializeError::ChecksumMismatch);
    }
    let mut r = Reader { data: payload, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(SerializeError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(SerializeError::BadVersion(version));
    }
    let _reserved = r.u16()?;
    let name = r.string()?;
    let n = r.u32()? as usize;
    let mut code = Vec::with_capacity(n.min(1 << 22));
    for _ in 0..n {
        code.push(r.u32()?);
    }
    let nf = r.u32()? as usize;
    let mut functions = Vec::with_capacity(nf.min(1 << 16));
    for _ in 0..nf {
        let fname = r.string()?;
        let start = r.u32()? as usize;
        let end = r.u32()? as usize;
        let prologue_len = r.u32()? as usize;
        let ne = r.u16()? as usize;
        let mut epilogues = Vec::with_capacity(ne);
        for _ in 0..ne {
            let s = r.u32()? as usize;
            let e = r.u32()? as usize;
            epilogues.push(s..e);
        }
        functions.push(FunctionInfo { name: fname, start, end, prologue_len, epilogues });
    }
    let nt = r.u32()? as usize;
    let mut jump_tables = Vec::with_capacity(nt.min(1 << 16));
    for _ in 0..nt {
        let ne = r.u32()? as usize;
        let mut targets = Vec::with_capacity(ne.min(1 << 16));
        for _ in 0..ne {
            targets.push(r.u32()? as usize);
        }
        jump_tables.push(JumpTable { targets });
    }
    Ok(ObjectModule { name, code, functions, jump_tables })
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_ppc::encode;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    fn module() -> ObjectModule {
        let mut m = ObjectModule::new("demo");
        m.code = (0..32).map(|i| encode(&Insn::Addi { rt: R3, ra: R3, si: i })).collect();
        m.functions.push(FunctionInfo {
            name: "f0".into(),
            start: 0,
            end: 20,
            prologue_len: 3,
            epilogues: std::iter::once(17..20).collect(),
        });
        m.functions.push(FunctionInfo {
            name: "f1".into(),
            start: 20,
            end: 32,
            prologue_len: 2,
            epilogues: vec![28..30, 30..32],
        });
        m.jump_tables.push(JumpTable { targets: vec![0, 4, 20] });
        m
    }

    #[test]
    fn roundtrip() {
        let m = module();
        let bytes = serialize(&m);
        assert_eq!(deserialize(&bytes).unwrap(), m);
    }

    #[test]
    fn empty_module_roundtrips() {
        let m = ObjectModule::new("");
        assert_eq!(deserialize(&serialize(&m)).unwrap(), m);
    }

    #[test]
    fn corruption_detected() {
        let bytes = serialize(&module());
        for at in [0usize, 5, 20, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            assert!(deserialize(&bad).is_err(), "flip at {at}");
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = serialize(&module());
        for len in [0usize, 4, 11, bytes.len() - 1] {
            assert!(deserialize(&bytes[..len]).is_err(), "len {len}");
        }
    }

    #[test]
    fn crc_reference() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::module::{FunctionInfo, JumpTable, ObjectModule};
    use codense_codegen::Rng;

    const CASES: usize = 256;

    /// Arbitrary well-formed modules survive the .cdm round trip.
    #[test]
    fn roundtrip_arbitrary_modules() {
        let mut rng = Rng::new(0x0B1E_0001);
        for _ in 0..CASES {
            let name: String =
                (0..rng.below(13)).map(|_| (b'a' + rng.below(26) as u8) as char).collect();
            let mut m = ObjectModule::new(name);
            m.code = (0..rng.below(300)).map(|_| rng.next_u64() as u32).collect();
            let n = m.code.len();
            let mut cuts: Vec<usize> =
                (0..rng.below(6)).map(|_| rng.below(300)).filter(|&c| c < n).collect();
            cuts.sort_unstable();
            cuts.dedup();
            for pair in cuts.windows(2) {
                m.functions.push(FunctionInfo {
                    name: format!("f{}", pair[0]),
                    start: pair[0],
                    end: pair[1].max(pair[0] + 1),
                    prologue_len: 0,
                    epilogues: vec![],
                });
            }
            if n > 0 {
                let targets: Vec<usize> =
                    (0..rng.below(8)).map(|_| rng.below(300)).filter(|&t| t < n).collect();
                if !targets.is_empty() {
                    m.jump_tables.push(JumpTable { targets });
                }
            }
            let got = deserialize(&serialize(&m));
            assert_eq!(got, Ok(m));
        }
    }

    /// Deserialization never panics on arbitrary bytes.
    #[test]
    fn deserialize_total() {
        let mut rng = Rng::new(0x0B1E_0002);
        for _ in 0..CASES {
            let bytes: Vec<u8> = (0..rng.below(512)).map(|_| rng.next_u64() as u8).collect();
            let _ = deserialize(&bytes);
        }
    }
}
