#![warn(missing_docs)]

//! Object-module model: the post-compilation program representation that the
//! compressor, analyzers, baselines, and VM all consume.
//!
//! An [`ObjectModule`] is a statically linked program image: a `.text`
//! section of 32-bit PowerPC words plus the metadata a post-compilation
//! compressor needs — function boundaries (with prologue/epilogue extents,
//! for the paper's Table 3), and jump tables. Following §3.2.1 of the paper,
//! jump tables live in `.data` (not interleaved in `.text`) and hold
//! instruction addresses that the compressor patches after relocation.
//!
//! [`BasicBlocks`] derives the basic-block partition of the text: dictionary
//! entries may never span a block boundary, and branch targets always land on
//! block leaders.

pub mod bb;
pub mod crc32;
pub mod module;
pub mod serialize;

pub use bb::BasicBlocks;
pub use module::{FunctionInfo, JumpTable, ModuleError, ObjectModule};
pub use serialize::{deserialize, serialize, SerializeError};
