//! Basic-block partitioning of a text section.
//!
//! Dictionary entries "are limited to sequences of instructions within a
//! basic block" and branches "may branch to codewords, but they may not
//! branch within encoded sequences" (§3.1.1). Computing block leaders from
//! branch targets guarantees both properties: any sequence inside a block
//! contains no branch target except possibly its own first instruction.

use crate::module::ObjectModule;
use codense_isa::IsaRef;

/// The basic-block partition of a module's text section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlocks {
    /// `leader[i]` is `true` if instruction `i` starts a basic block.
    leaders: Vec<bool>,
    /// Block boundaries as `(start, end)` instruction index pairs.
    blocks: Vec<(usize, usize)>,
}

impl BasicBlocks {
    /// Computes the partition for a module under PowerPC decoding (see
    /// [`compute_with`](Self::compute_with)).
    ///
    /// # Panics
    ///
    /// Panics if a branch or jump-table target lies outside the text
    /// section — run [`ObjectModule::validate`] first for untrusted input.
    pub fn compute(module: &ObjectModule) -> BasicBlocks {
        BasicBlocks::compute_with(module, IsaRef(&codense_ppc::ISA))
    }

    /// Computes the partition for a module under `isa`.
    ///
    /// Leaders are: instruction 0, every function entry, every PC-relative
    /// branch target, every jump-table target, and every instruction
    /// following a control transfer (including indirect branches and
    /// system calls).
    ///
    /// # Panics
    ///
    /// Panics if a branch or jump-table target lies outside the text
    /// section — run [`ObjectModule::validate_with`] first for untrusted
    /// input.
    pub fn compute_with(module: &ObjectModule, isa: IsaRef) -> BasicBlocks {
        let n = module.code.len();
        let mut leaders = vec![false; n];
        if n > 0 {
            leaders[0] = true;
        }
        for func in &module.functions {
            if func.start < n {
                leaders[func.start] = true;
            }
        }
        for table in &module.jump_tables {
            for &t in &table.targets {
                leaders[t] = true;
            }
        }
        for (i, &w) in module.code.iter().enumerate() {
            if let Some(info) = isa.rel_branch_info(w) {
                let target = (i as i64 + (info.offset / 4) as i64) as usize;
                leaders[target] = true;
            }
            if isa.ends_block(w) && i + 1 < n {
                leaders[i + 1] = true;
            }
        }
        let mut blocks = Vec::new();
        let mut start = 0;
        for (i, &lead) in leaders.iter().enumerate().skip(1) {
            if lead {
                blocks.push((start, i));
                start = i;
            }
        }
        if n > 0 {
            blocks.push((start, n));
        }
        BasicBlocks { leaders, blocks }
    }

    /// Returns `true` if instruction `i` starts a basic block.
    pub fn is_leader(&self, i: usize) -> bool {
        self.leaders[i]
    }

    /// The blocks as `(start, end)` instruction index pairs, in program
    /// order, covering the whole text exactly once.
    pub fn blocks(&self) -> &[(usize, usize)] {
        &self.blocks
    }

    /// Number of basic blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` when the text section was empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Mean block length in instructions.
    pub fn mean_block_len(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        let total: usize = self.blocks.iter().map(|(s, e)| e - s).sum();
        total as f64 / self.blocks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::JumpTable;
    use codense_ppc::asm::Assembler;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    fn sample_module() -> ObjectModule {
        let mut a = Assembler::new();
        a.emit(Insn::Addi { rt: R3, ra: R0, si: 0 }); // 0 leader (entry)
        a.label("loop"); // 1 leader (target)
        a.emit(Insn::Addi { rt: R3, ra: R3, si: 1 });
        a.emit(Insn::Cmpwi { bf: CR0, ra: R3, si: 10 });
        a.bne(CR0, "loop"); // 3, ends block
        a.emit(Insn::Sc); // 4 leader (after branch)
        let mut m = ObjectModule::new("t");
        m.code = a.finish().unwrap();
        m
    }

    #[test]
    fn leaders_and_blocks() {
        let m = sample_module();
        let bb = BasicBlocks::compute(&m);
        assert!(bb.is_leader(0));
        assert!(bb.is_leader(1));
        assert!(!bb.is_leader(2));
        assert!(!bb.is_leader(3));
        assert!(bb.is_leader(4));
        assert_eq!(bb.blocks(), &[(0, 1), (1, 4), (4, 5)]);
    }

    #[test]
    fn blocks_cover_text_exactly() {
        let m = sample_module();
        let bb = BasicBlocks::compute(&m);
        let mut next = 0;
        for &(s, e) in bb.blocks() {
            assert_eq!(s, next);
            assert!(e > s);
            next = e;
        }
        assert_eq!(next, m.code.len());
    }

    #[test]
    fn jump_table_targets_are_leaders() {
        let mut m = sample_module();
        m.jump_tables.push(JumpTable { targets: vec![2] });
        let bb = BasicBlocks::compute(&m);
        assert!(bb.is_leader(2));
    }

    #[test]
    fn empty_module() {
        let m = ObjectModule::new("e");
        let bb = BasicBlocks::compute(&m);
        assert!(bb.is_empty());
        assert_eq!(bb.mean_block_len(), 0.0);
    }
}
