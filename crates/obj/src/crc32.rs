//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320` reflected) — the checksum of
//! the `.cdm` module format, the `.cdz` container, and every serve frame.
//!
//! Three implementations, all bit-for-bit identical:
//!
//! * [`crc32_bitwise`] — the original 8-shifts-per-byte loop, kept as the
//!   executable reference the check-value suite compares everything against;
//! * [`crc32_slice8`] — slicing-by-8: eight 256-entry lookup tables
//!   (generated at compile time by a `const fn`) process 8 input bytes per
//!   iteration with no data-dependent branching. ~10× the bitwise loop on
//!   any CPU, no feature detection needed;
//! * an AArch64 hardware path using the `crc32b`/`crc32x` instructions
//!   (ARMv8 CRC extension), which implement exactly this polynomial. Chosen
//!   at runtime via `is_aarch64_feature_detected!`.
//!
//! x86-64's SSE4.2 `crc32` instruction is deliberately **not** used: it
//! hard-wires the Castagnoli polynomial (`0x1EDC6F41`, CRC-32C), not the
//! IEEE polynomial, so it would change every stored checksum and break the
//! format. (A PCLMULQDQ folding kernel could accelerate the IEEE polynomial
//! on x86, but slicing-by-8 already removes the checksum from the serve
//! profile.)

/// The IEEE 802.3 polynomial, reflected.
const POLY: u32 = 0xedb8_8320;

/// CRC-32 of `data` — dispatches to the fastest correct implementation for
/// the running CPU.
pub fn crc32(data: &[u8]) -> u32 {
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("crc") {
            // SAFETY: the `crc` feature was just detected.
            return unsafe { crc32_aarch64(data) };
        }
    }
    crc32_slice8(data)
}

/// Bitwise reference implementation: 8 shifts per byte. Slow; exists so the
/// table and hardware paths have an independently-simple ground truth.
pub fn crc32_bitwise(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// The slicing-by-8 tables: `TABLES[k][b]` advances a CRC whose next input
/// byte is `b` followed by `k` zero bytes.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut b = 0usize;
    while b < 256 {
        let mut crc = b as u32;
        let mut k = 0;
        while k < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
            k += 1;
        }
        t[0][b] = crc;
        b += 1;
    }
    let mut k = 1usize;
    while k < 8 {
        let mut b = 0usize;
        while b < 256 {
            let prev = t[k - 1][b];
            t[k][b] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            b += 1;
        }
        k += 1;
    }
    t
}

/// Slicing-by-8 table implementation: 8 bytes per iteration, 8 independent
/// table loads whose XOR reduction the CPU can overlap.
pub fn crc32_slice8(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        crc = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][c[4] as usize]
            ^ TABLES[2][c[5] as usize]
            ^ TABLES[1][c[6] as usize]
            ^ TABLES[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Hardware path: ARMv8 `crc32x`/`crc32b` compute the IEEE polynomial
/// directly, 8 bytes per instruction.
///
/// # Safety
///
/// Caller must ensure the CPU supports the `crc` feature.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "crc")]
unsafe fn crc32_aarch64(data: &[u8]) -> u32 {
    use std::arch::aarch64::{__crc32b, __crc32d};
    let mut crc = 0xffff_ffffu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        crc = __crc32d(crc, u64::from_le_bytes(c.try_into().unwrap()));
    }
    for &b in chunks.remainder() {
        crc = __crc32b(crc, b);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32_bitwise(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32_slice8(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn all_lengths_agree_with_reference() {
        // Every alignment of the 8-byte main loop, including the empty
        // buffer and pure-remainder lengths.
        let data: Vec<u8> = (0u32..64).map(|i| (i.wrapping_mul(0x9e37_79b9) >> 24) as u8).collect();
        for len in 0..data.len() {
            let want = crc32_bitwise(&data[..len]);
            assert_eq!(crc32_slice8(&data[..len]), want, "slice8 at len {len}");
            assert_eq!(crc32(&data[..len]), want, "dispatch at len {len}");
        }
    }
}
