//! Corrupted-input round-trips for the `.cdm` module format.
//!
//! The trailing CRC-32 is checked before anything is parsed, so random
//! corruption is normally reported as [`SerializeError::ChecksumMismatch`].
//! These tests go further: they *re-fix* the CRC after corrupting structural
//! fields, proving the structural layer itself returns typed errors (and
//! never panics or over-allocates) even when the checksum is valid.

use std::panic::{catch_unwind, AssertUnwindSafe};

use codense_obj::serialize::{crc32, deserialize, serialize, SerializeError};
use codense_obj::{FunctionInfo, JumpTable, ObjectModule};
use codense_ppc::encode;
use codense_ppc::insn::Insn;
use codense_ppc::reg::R3;

fn sample_module() -> ObjectModule {
    let mut m = ObjectModule::new("fixture");
    m.code = (0..48).map(|i| encode(&Insn::Addi { rt: R3, ra: R3, si: i })).collect();
    m.functions.push(FunctionInfo {
        name: "entry".into(),
        start: 0,
        end: 30,
        prologue_len: 4,
        epilogues: std::iter::once(26..30).collect(),
    });
    m.functions.push(FunctionInfo {
        name: "helper".into(),
        start: 30,
        end: 48,
        prologue_len: 2,
        epilogues: vec![40..42, 46..48],
    });
    m.jump_tables.push(JumpTable { targets: vec![0, 8, 30] });
    m.jump_tables.push(JumpTable { targets: vec![4] });
    m
}

/// Byte offsets of interest, mirroring the writer's layout walk.
struct Layout {
    /// Offsets of every length/count field, with the width that field has.
    length_fields: Vec<(usize, usize)>,
    /// Offsets of section boundaries (end of each logical section).
    boundaries: Vec<usize>,
    /// Offset of the module-name payload bytes.
    name_bytes: usize,
}

fn layout_of(m: &ObjectModule) -> Layout {
    let mut length_fields = Vec::new();
    let mut boundaries = Vec::new();
    let mut pos = 4 + 2 + 2; // magic, version, reserved
    boundaries.push(pos);
    length_fields.push((pos, 2)); // name length
    let name_bytes = pos + 2;
    pos += 2 + m.name.len();
    boundaries.push(pos);
    length_fields.push((pos, 4)); // text word count
    pos += 4 + 4 * m.code.len();
    boundaries.push(pos);
    length_fields.push((pos, 4)); // function count
    pos += 4;
    for f in &m.functions {
        length_fields.push((pos, 2)); // function name length
        pos += 2 + f.name.len() + 4 + 4 + 4;
        length_fields.push((pos, 2)); // epilogue count
        pos += 2 + 8 * f.epilogues.len();
        boundaries.push(pos);
    }
    length_fields.push((pos, 4)); // jump-table count
    pos += 4;
    for t in &m.jump_tables {
        length_fields.push((pos, 4)); // entry count
        pos += 4 + 4 * t.targets.len();
        boundaries.push(pos);
    }
    pos += 4; // CRC
    boundaries.push(pos);
    Layout { length_fields, boundaries, name_bytes }
}

/// Re-stamps the trailing CRC so corruption reaches the structural parser.
fn refix_crc(bytes: &mut [u8]) {
    let (payload, crc) = bytes.split_at_mut(bytes.len() - 4);
    crc.copy_from_slice(&crc32(payload).to_be_bytes());
}

fn assert_no_panic(bytes: &[u8]) -> Result<ObjectModule, SerializeError> {
    catch_unwind(AssertUnwindSafe(|| deserialize(bytes)))
        .unwrap_or_else(|_| panic!("deserialize panicked on {} bytes", bytes.len()))
}

#[test]
fn layout_walk_matches_writer() {
    let m = sample_module();
    let bytes = serialize(&m);
    let layout = layout_of(&m);
    assert_eq!(*layout.boundaries.last().unwrap(), bytes.len());
    // Spot-check a counted field: the text word count sits where we think.
    let at = layout.length_fields[1].0;
    let n = u32::from_be_bytes(bytes[at..at + 4].try_into().unwrap());
    assert_eq!(n as usize, m.code.len());
}

#[test]
fn truncation_at_every_section_boundary() {
    let m = sample_module();
    let bytes = serialize(&m);
    let layout = layout_of(&m);
    for &b in &layout.boundaries {
        for len in [b.saturating_sub(1), b, (b + 1).min(bytes.len())] {
            if len == bytes.len() {
                continue;
            }
            let got = assert_no_panic(&bytes[..len]);
            let expected = if len < 12 {
                SerializeError::Truncated
            } else {
                // The last 4 bytes of the prefix now read as a CRC of the
                // shorter payload, which cannot match.
                SerializeError::ChecksumMismatch
            };
            assert_eq!(got, Err(expected), "truncated to {len}");
        }
    }
}

#[test]
fn every_prefix_is_rejected_without_panicking() {
    let bytes = serialize(&sample_module());
    for len in 0..bytes.len() {
        assert!(assert_no_panic(&bytes[..len]).is_err(), "prefix {len} accepted");
    }
}

#[test]
fn flipped_length_fields_with_valid_crc_give_typed_truncation() {
    let m = sample_module();
    let bytes = serialize(&m);
    let layout = layout_of(&m);
    for &(at, width) in &layout.length_fields {
        let mut bad = bytes.clone();
        // Saturate the field: every count now claims far more payload than
        // the buffer holds, so the structural layer must hit `Truncated` —
        // without first allocating anything near the claimed size.
        for b in &mut bad[at..at + width] {
            *b = 0xFF;
        }
        refix_crc(&mut bad);
        assert_eq!(
            assert_no_panic(&bad),
            Err(SerializeError::Truncated),
            "length field at {at} (width {width})"
        );
    }
}

#[test]
fn non_utf8_name_with_valid_crc_is_a_typed_error() {
    let m = sample_module();
    let mut bad = serialize(&m);
    let layout = layout_of(&m);
    bad[layout.name_bytes] = 0xFF; // invalid UTF-8 lead byte
    refix_crc(&mut bad);
    assert_eq!(assert_no_panic(&bad), Err(SerializeError::BadString));
}

#[test]
fn bad_magic_and_version_are_typed_errors() {
    let m = sample_module();

    let mut bad = serialize(&m);
    bad[0] = b'X';
    refix_crc(&mut bad);
    assert_eq!(assert_no_panic(&bad), Err(SerializeError::BadMagic));

    let mut bad = serialize(&m);
    bad[4..6].copy_from_slice(&2u16.to_be_bytes());
    refix_crc(&mut bad);
    assert_eq!(assert_no_panic(&bad), Err(SerializeError::BadVersion(2)));
}

#[test]
fn every_single_byte_flip_is_caught() {
    let m = sample_module();
    let bytes = serialize(&m);
    for at in 0..bytes.len() {
        for bit in [0x01u8, 0x80] {
            let mut bad = bytes.clone();
            bad[at] ^= bit;
            let got = assert_no_panic(&bad);
            assert!(got.is_err(), "flip {bit:#04x} at byte {at} accepted");
            // Without re-fixing the CRC, the checksum fires first: payload
            // flips mismatch the stored CRC, CRC flips mismatch the payload.
            assert_eq!(got, Err(SerializeError::ChecksumMismatch), "flip at {at}");
        }
    }
}

#[test]
fn splice_of_two_valid_modules_is_rejected() {
    let a = serialize(&sample_module());
    let b = serialize(&ObjectModule::new("other"));
    for cut in [4usize, a.len() / 2, a.len() - 5] {
        let mut spliced = a[..cut].to_vec();
        spliced.extend_from_slice(&b[cut.min(b.len())..]);
        if spliced == a || spliced == b {
            continue;
        }
        assert!(assert_no_panic(&spliced).is_err(), "splice at {cut} accepted");
    }
}
