//! IEEE CRC-32 check-value suite: pins the dispatching implementation (and
//! the slicing-by-8 tables, and the hardware path where present) against
//! known vectors and against the bitwise reference on structured and
//! pseudorandom buffers, including a 1 MiB stream exercising every alignment
//! of the 8-byte main loop.

use codense_obj::crc32::{crc32, crc32_bitwise, crc32_slice8};

/// Known IEEE 802.3 CRC-32 vectors (reflected, init/xorout `0xFFFFFFFF`).
#[test]
fn known_vectors() {
    // (input, crc32)
    let vectors: &[(&[u8], u32)] = &[
        (b"", 0x0000_0000),
        (b"a", 0xe8b7_be43),
        (b"abc", 0x3524_41c2),
        (b"123456789", 0xcbf4_3926), // the standard "check" value
        (b"The quick brown fox jumps over the lazy dog", 0x414f_a339),
    ];
    for &(input, want) in vectors {
        assert_eq!(crc32(input), want, "dispatch on {input:?}");
        assert_eq!(crc32_bitwise(input), want, "bitwise on {input:?}");
        assert_eq!(crc32_slice8(input), want, "slice8 on {input:?}");
    }
}

#[test]
fn all_zero_buffers() {
    // CRC-32 of n zero bytes has closed-form known values at a few sizes.
    let zeros = [0u8; 64];
    assert_eq!(crc32(&zeros[..4]), 0x2144_df1c);
    assert_eq!(crc32(&zeros[..32]), 0x190a_55ad);
    for len in 0..zeros.len() {
        assert_eq!(crc32(&zeros[..len]), crc32_bitwise(&zeros[..len]), "zeros len {len}");
    }
}

#[test]
fn all_ones_buffers() {
    let ones = [0xffu8; 64];
    assert_eq!(crc32(&ones[..4]), 0xffff_ffff);
    assert_eq!(crc32(&ones[..32]), 0xff6c_ab0b);
    for len in 0..ones.len() {
        assert_eq!(crc32(&ones[..len]), crc32_bitwise(&ones[..len]), "ones len {len}");
    }
}

/// Deterministic pseudorandom bytes (xorshift64*, fixed seed).
fn pseudorandom(len: usize) -> Vec<u8> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let word = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.truncate(len);
    out
}

#[test]
fn one_mebibyte_pseudorandom_agrees_bit_for_bit() {
    let data = pseudorandom(1 << 20);
    let want = crc32_bitwise(&data);
    assert_eq!(crc32_slice8(&data), want, "slice8 diverges from bitwise reference");
    assert_eq!(crc32(&data), want, "dispatched path diverges from bitwise reference");
    // Unaligned starts and tails hit the remainder loops.
    for (lo, hi) in [(1, 1 << 20), (0, (1 << 20) - 3), (7, (1 << 20) - 7)] {
        let want = crc32_bitwise(&data[lo..hi]);
        assert_eq!(crc32_slice8(&data[lo..hi]), want, "slice8 on [{lo}..{hi}]");
        assert_eq!(crc32(&data[lo..hi]), want, "dispatch on [{lo}..{hi}]");
    }
}
