//! Hand-written runnable kernels: real programs (loops, calls, memory,
//! sorting, hashing) used to prove that compressed programs execute
//! identically to their originals on the [`crate::machine::Machine`].

use codense_obj::ObjectModule;
use codense_ppc::asm::Assembler;
use codense_ppc::insn::Insn;
use codense_ppc::reg::*;

/// A runnable test program with its input memory image and expected result.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name.
    pub name: &'static str,
    /// The program.
    pub module: ObjectModule,
    /// Initial memory contents as (address, bytes) pairs.
    pub init_mem: Vec<(u32, Vec<u8>)>,
    /// Expected `r3` at halt.
    pub expected: u32,
}

impl Kernel {
    /// Writes the kernel's input data into a machine's memory.
    ///
    /// # Panics
    ///
    /// Panics if an init region exceeds the machine's memory.
    pub fn apply_init(&self, machine: &mut crate::machine::Machine) {
        for (addr, bytes) in &self.init_mem {
            let a = *addr as usize;
            machine.mem[a..a + bytes.len()].copy_from_slice(bytes);
        }
    }
}

fn finish(
    name: &'static str,
    a: Assembler,
    init_mem: Vec<(u32, Vec<u8>)>,
    expected: u32,
) -> Kernel {
    let mut module = ObjectModule::new(name);
    module.code = a.finish().expect("kernel assembles");
    module.validate().expect("kernel validates");
    Kernel { name, module, init_mem, expected }
}

/// Iterative Fibonacci: `fib(20) = 6765`.
pub fn fib() -> Kernel {
    let mut a = Assembler::new();
    a.emit(Insn::Addi { rt: R3, ra: R0, si: 0 });
    a.emit(Insn::Addi { rt: R4, ra: R0, si: 1 });
    a.emit(Insn::Addi { rt: R5, ra: R0, si: 20 });
    a.label("loop");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R5, si: 0 });
    a.beq(CR0, "done");
    a.emit(Insn::Add { rt: R6, ra: R3, rb: R4, rc: false });
    a.emit(Insn::Or { ra: R3, rs: R4, rb: R4, rc: false });
    a.emit(Insn::Or { ra: R4, rs: R6, rb: R6, rc: false });
    a.emit(Insn::Addi { rt: R5, ra: R5, si: -1 });
    a.b("loop");
    a.label("done");
    a.emit(Insn::Sc);
    finish("fib", a, vec![], 6765)
}

/// Sums 32 words `i²` stored at `0x1000`: Σ i² for i in 0..32 = 10416.
pub fn sum_array() -> Kernel {
    let mut a = Assembler::new();
    a.emit(Insn::Addi { rt: R9, ra: R0, si: 0x1000 });
    a.emit(Insn::Addi { rt: R10, ra: R0, si: 32 });
    a.emit(Insn::Addi { rt: R3, ra: R0, si: 0 });
    a.label("loop");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R10, si: 0 });
    a.beq(CR0, "done");
    a.emit(Insn::Lwz { rt: R12, ra: R9, d: 0 });
    a.emit(Insn::Add { rt: R3, ra: R3, rb: R12, rc: false });
    a.emit(Insn::Addi { rt: R9, ra: R9, si: 4 });
    a.emit(Insn::Addi { rt: R10, ra: R10, si: -1 });
    a.b("loop");
    a.label("done");
    a.emit(Insn::Sc);

    let mut bytes = Vec::new();
    let mut expected = 0u32;
    for i in 0..32u32 {
        bytes.extend_from_slice(&(i * i).to_be_bytes());
        expected += i * i;
    }
    finish("sum_array", a, vec![(0x1000, bytes)], expected)
}

/// Bubble-sorts 16 descending words at `0x2000`, then returns the
/// position-weighted checksum Σ (i+1)·a\[i\] = Σ k² for k = 1..=16 = 1496.
pub fn bubble_sort() -> Kernel {
    let mut a = Assembler::new();
    a.emit(Insn::Addi { rt: R9, ra: R0, si: 0x2000 });
    a.emit(Insn::Addi { rt: R10, ra: R0, si: 16 });
    a.emit(Insn::Addi { rt: R14, ra: R10, si: -1 });
    a.label("outer");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R14, si: 0 });
    a.ble(CR0, "sorted");
    a.emit(Insn::Addi { rt: R15, ra: R0, si: 0 });
    a.label("inner");
    a.emit(Insn::Cmpw { bf: CR0, ra: R15, rb: R14 });
    a.bge(CR0, "inner_done");
    a.emit(Insn::Rlwinm { ra: R16, rs: R15, sh: 2, mb: 0, me: 29, rc: false });
    a.emit(Insn::Lwzx { rt: R17, ra: R9, rb: R16 });
    a.emit(Insn::Addi { rt: R18, ra: R16, si: 4 });
    a.emit(Insn::Lwzx { rt: R19, ra: R9, rb: R18 });
    a.emit(Insn::Cmpw { bf: CR0, ra: R17, rb: R19 });
    a.ble(CR0, "noswap");
    a.emit(Insn::Stwx { rs: R19, ra: R9, rb: R16 });
    a.emit(Insn::Stwx { rs: R17, ra: R9, rb: R18 });
    a.label("noswap");
    a.emit(Insn::Addi { rt: R15, ra: R15, si: 1 });
    a.b("inner");
    a.label("inner_done");
    a.emit(Insn::Addi { rt: R14, ra: R14, si: -1 });
    a.b("outer");
    a.label("sorted");
    // Checksum.
    a.emit(Insn::Addi { rt: R3, ra: R0, si: 0 });
    a.emit(Insn::Addi { rt: R15, ra: R0, si: 0 });
    a.label("ck");
    a.emit(Insn::Cmpw { bf: CR0, ra: R15, rb: R10 });
    a.bge(CR0, "done");
    a.emit(Insn::Rlwinm { ra: R16, rs: R15, sh: 2, mb: 0, me: 29, rc: false });
    a.emit(Insn::Lwzx { rt: R17, ra: R9, rb: R16 });
    a.emit(Insn::Addi { rt: R18, ra: R15, si: 1 });
    a.emit(Insn::Mullw { rt: R17, ra: R17, rb: R18, rc: false });
    a.emit(Insn::Add { rt: R3, ra: R3, rb: R17, rc: false });
    a.emit(Insn::Addi { rt: R15, ra: R15, si: 1 });
    a.b("ck");
    a.label("done");
    a.emit(Insn::Sc);

    let mut bytes = Vec::new();
    for k in (1..=16u32).rev() {
        bytes.extend_from_slice(&k.to_be_bytes());
    }
    let expected: u32 = (1..=16u32).map(|k| k * k).sum();
    finish("bubble_sort", a, vec![(0x2000, bytes)], expected)
}

const TEST_STRING: &[u8] = b"hello, embedded world\0";

/// `strlen` of a NUL-terminated string at `0x3000` (21).
pub fn strlen() -> Kernel {
    let mut a = Assembler::new();
    a.emit(Insn::Addi { rt: R9, ra: R0, si: 0x3000 });
    a.emit(Insn::Addi { rt: R3, ra: R0, si: 0 });
    a.label("loop");
    a.emit(Insn::Lbzx { rt: R11, ra: R9, rb: R3 });
    a.emit(Insn::Cmpwi { bf: CR0, ra: R11, si: 0 });
    a.beq(CR0, "done");
    a.emit(Insn::Addi { rt: R3, ra: R3, si: 1 });
    a.b("loop");
    a.label("done");
    a.emit(Insn::Sc);
    finish("strlen", a, vec![(0x3000, TEST_STRING.to_vec())], TEST_STRING.len() as u32 - 1)
}

/// djb2 hash of the test string — exercises shifts and byte loads.
pub fn hash_string() -> Kernel {
    let mut a = Assembler::new();
    a.emit(Insn::Addi { rt: R9, ra: R0, si: 0x3000 });
    a.emit(Insn::Addi { rt: R3, ra: R0, si: 5381 });
    a.emit(Insn::Addi { rt: R10, ra: R0, si: 0 });
    a.label("loop");
    a.emit(Insn::Lbzx { rt: R11, ra: R9, rb: R10 });
    a.emit(Insn::Cmpwi { bf: CR0, ra: R11, si: 0 });
    a.beq(CR0, "done");
    a.emit(Insn::Rlwinm { ra: R12, rs: R3, sh: 5, mb: 0, me: 26, rc: false });
    a.emit(Insn::Add { rt: R3, ra: R3, rb: R12, rc: false });
    a.emit(Insn::Add { rt: R3, ra: R3, rb: R11, rc: false });
    a.emit(Insn::Addi { rt: R10, ra: R10, si: 1 });
    a.b("loop");
    a.label("done");
    a.emit(Insn::Sc);

    let mut h = 5381u32;
    for &b in &TEST_STRING[..TEST_STRING.len() - 1] {
        h = h.wrapping_add(h << 5).wrapping_add(b as u32);
    }
    finish("hash_string", a, vec![(0x3000, TEST_STRING.to_vec())], h)
}

/// Euclid's GCD through a real call/return: `gcd(1071, 462) = 21`.
pub fn gcd() -> Kernel {
    let mut a = Assembler::new();
    a.emit(Insn::Addi { rt: R3, ra: R0, si: 1071 });
    a.emit(Insn::Addi { rt: R4, ra: R0, si: 462 });
    a.bl("gcd");
    a.emit(Insn::Sc);
    a.label("gcd");
    a.label("loop");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R4, si: 0 });
    a.beq(CR0, "ret");
    a.emit(Insn::Divw { rt: R9, ra: R3, rb: R4, rc: false });
    a.emit(Insn::Mullw { rt: R9, ra: R9, rb: R4, rc: false });
    a.emit(Insn::Subf { rt: R9, ra: R9, rb: R3, rc: false });
    a.emit(Insn::Or { ra: R3, rs: R4, rb: R4, rc: false });
    a.emit(Insn::Or { ra: R4, rs: R9, rb: R9, rc: false });
    a.b("loop");
    a.label("ret");
    a.blr();
    finish("gcd", a, vec![], 21)
}

/// Sieve of Eratosthenes: primes below 100 (25), via a byte array at
/// `0x4000`.
pub fn sieve() -> Kernel {
    let mut a = Assembler::new();
    a.emit(Insn::Addi { rt: R9, ra: R0, si: 0x4000 });
    a.emit(Insn::Addi { rt: R14, ra: R0, si: 2 });
    a.label("outer");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R14, si: 100 });
    a.bge(CR0, "count");
    a.emit(Insn::Lbzx { rt: R11, ra: R9, rb: R14 });
    a.emit(Insn::Cmpwi { bf: CR0, ra: R11, si: 0 });
    a.bne(CR0, "next");
    a.emit(Insn::Add { rt: R15, ra: R14, rb: R14, rc: false });
    a.label("mark");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R15, si: 100 });
    a.bge(CR0, "next");
    a.emit(Insn::Addi { rt: R12, ra: R0, si: 1 });
    a.emit(Insn::Stbx { rs: R12, ra: R9, rb: R15 });
    a.emit(Insn::Add { rt: R15, ra: R15, rb: R14, rc: false });
    a.b("mark");
    a.label("next");
    a.emit(Insn::Addi { rt: R14, ra: R14, si: 1 });
    a.b("outer");
    a.label("count");
    a.emit(Insn::Addi { rt: R3, ra: R0, si: 0 });
    a.emit(Insn::Addi { rt: R14, ra: R0, si: 2 });
    a.label("cl");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R14, si: 100 });
    a.bge(CR0, "done");
    a.emit(Insn::Lbzx { rt: R11, ra: R9, rb: R14 });
    a.emit(Insn::Cmpwi { bf: CR0, ra: R11, si: 0 });
    a.bne(CR0, "skip");
    a.emit(Insn::Addi { rt: R3, ra: R3, si: 1 });
    a.label("skip");
    a.emit(Insn::Addi { rt: R14, ra: R14, si: 1 });
    a.b("cl");
    a.label("done");
    a.emit(Insn::Sc);
    finish("sieve", a, vec![(0x4000, vec![0; 128])], 25)
}

/// Sum of squares 0..10 through a callee with a real stack frame —
/// exercises `stwu`/`blr` prologue/epilogue mechanics (Σ = 285).
pub fn call_frames() -> Kernel {
    let mut a = Assembler::new();
    a.emit(Insn::Addi { rt: R14, ra: R0, si: 0 });
    a.emit(Insn::Addi { rt: R15, ra: R0, si: 0 });
    a.label("loop");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R14, si: 10 });
    a.bge(CR0, "done");
    a.emit(Insn::Or { ra: R3, rs: R14, rb: R14, rc: false });
    a.bl("square");
    a.emit(Insn::Add { rt: R15, ra: R15, rb: R3, rc: false });
    a.emit(Insn::Addi { rt: R14, ra: R14, si: 1 });
    a.b("loop");
    a.label("done");
    a.emit(Insn::Or { ra: R3, rs: R15, rb: R15, rc: false });
    a.emit(Insn::Sc);
    a.label("square");
    a.emit(Insn::Stwu { rs: R1, ra: R1, d: -16 });
    a.emit(Insn::Stw { rs: R14, ra: R1, d: 8 });
    a.emit(Insn::Mullw { rt: R3, ra: R3, rb: R3, rc: false });
    a.emit(Insn::Lwz { rt: R14, ra: R1, d: 8 });
    a.emit(Insn::Addi { rt: R1, ra: R1, si: 16 });
    a.blr();
    finish("call_frames", a, vec![], 285)
}

/// Recursive quicksort over 24 words at `0x5000` — deep call stacks, frame
/// traffic, and multiple return paths. Returns the sorted array's
/// position-weighted checksum.
pub fn quicksort() -> Kernel {
    let mut a = Assembler::new();
    // main: r3 = lo index (0), r4 = hi index (n-1)
    a.emit(Insn::Addi { rt: R3, ra: R0, si: 0 });
    a.emit(Insn::Addi { rt: R4, ra: R0, si: 23 });
    a.bl("qsort");
    // checksum
    a.emit(Insn::Addi { rt: R9, ra: R0, si: 0x5000 });
    a.emit(Insn::Addi { rt: R3, ra: R0, si: 0 });
    a.emit(Insn::Addi { rt: R15, ra: R0, si: 0 });
    a.label("ck");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R15, si: 24 });
    a.bge(CR0, "done");
    a.emit(Insn::Rlwinm { ra: R16, rs: R15, sh: 2, mb: 0, me: 29, rc: false });
    a.emit(Insn::Lwzx { rt: R17, ra: R9, rb: R16 });
    a.emit(Insn::Addi { rt: R18, ra: R15, si: 1 });
    a.emit(Insn::Mullw { rt: R17, ra: R17, rb: R18, rc: false });
    a.emit(Insn::Add { rt: R3, ra: R3, rb: R17, rc: false });
    a.emit(Insn::Addi { rt: R15, ra: R15, si: 1 });
    a.b("ck");
    a.label("done");
    a.emit(Insn::Sc);

    // qsort(lo=r3, hi=r4): recursive, Lomuto partition.
    a.label("qsort");
    a.emit(Insn::Cmpw { bf: CR0, ra: R3, rb: R4 });
    a.bge(CR0, "qret0"); // lo >= hi
                         // prologue: save lr, r29 (lo), r30 (hi), r28 (pivot index)
    a.emit(Insn::Stwu { rs: R1, ra: R1, d: -32 });
    a.emit(Insn::Mfspr { rt: R0, spr: Spr::Lr });
    a.emit(Insn::Stw { rs: R0, ra: R1, d: 36 });
    a.emit(Insn::Stmw { rs: R28, ra: R1, d: 16 });
    a.emit(Insn::Or { ra: R29, rs: R3, rb: R3, rc: false }); // lo
    a.emit(Insn::Or { ra: R30, rs: R4, rb: R4, rc: false }); // hi
                                                             // partition: pivot = a[hi]; i = lo-1; for j in lo..hi
    a.emit(Insn::Addi { rt: R9, ra: R0, si: 0x5000 });
    a.emit(Insn::Rlwinm { ra: R11, rs: R30, sh: 2, mb: 0, me: 29, rc: false });
    a.emit(Insn::Lwzx { rt: R12, ra: R9, rb: R11 }); // pivot value
    a.emit(Insn::Addi { rt: R28, ra: R29, si: -1 }); // i
    a.emit(Insn::Or { ra: R10, rs: R29, rb: R29, rc: false }); // j
    a.label("part");
    a.emit(Insn::Cmpw { bf: CR0, ra: R10, rb: R30 });
    a.bge(CR0, "part_done");
    a.emit(Insn::Rlwinm { ra: R11, rs: R10, sh: 2, mb: 0, me: 29, rc: false });
    a.emit(Insn::Lwzx { rt: R8, ra: R9, rb: R11 }); // a[j]
    a.emit(Insn::Cmpw { bf: CR0, ra: R8, rb: R12 });
    a.bgt(CR0, "part_next");
    // i += 1; swap a[i], a[j]
    a.emit(Insn::Addi { rt: R28, ra: R28, si: 1 });
    a.emit(Insn::Rlwinm { ra: R7, rs: R28, sh: 2, mb: 0, me: 29, rc: false });
    a.emit(Insn::Lwzx { rt: R6, ra: R9, rb: R7 }); // a[i]
    a.emit(Insn::Stwx { rs: R8, ra: R9, rb: R7 });
    a.emit(Insn::Stwx { rs: R6, ra: R9, rb: R11 });
    a.label("part_next");
    a.emit(Insn::Addi { rt: R10, ra: R10, si: 1 });
    a.b("part");
    a.label("part_done");
    // place pivot: i += 1; swap a[i], a[hi]
    a.emit(Insn::Addi { rt: R28, ra: R28, si: 1 });
    a.emit(Insn::Rlwinm { ra: R7, rs: R28, sh: 2, mb: 0, me: 29, rc: false });
    a.emit(Insn::Lwzx { rt: R6, ra: R9, rb: R7 });
    a.emit(Insn::Rlwinm { ra: R11, rs: R30, sh: 2, mb: 0, me: 29, rc: false });
    a.emit(Insn::Stwx { rs: R6, ra: R9, rb: R11 });
    a.emit(Insn::Stwx { rs: R12, ra: R9, rb: R7 });
    // recurse left: qsort(lo, i-1)
    a.emit(Insn::Or { ra: R3, rs: R29, rb: R29, rc: false });
    a.emit(Insn::Addi { rt: R4, ra: R28, si: -1 });
    a.bl("qsort");
    // recurse right: qsort(i+1, hi)
    a.emit(Insn::Addi { rt: R3, ra: R28, si: 1 });
    a.emit(Insn::Or { ra: R4, rs: R30, rb: R30, rc: false });
    a.bl("qsort");
    // epilogue
    a.emit(Insn::Lmw { rt: R28, ra: R1, d: 16 });
    a.emit(Insn::Lwz { rt: R0, ra: R1, d: 36 });
    a.emit(Insn::Mtspr { spr: Spr::Lr, rs: R0 });
    a.emit(Insn::Addi { rt: R1, ra: R1, si: 32 });
    a.blr();
    a.label("qret0");
    a.blr();

    // Input: a scrambled permutation of 1..=24.
    let mut values: Vec<u32> = (1..=24).collect();
    // Deterministic shuffle.
    let mut x = 0x9e3779b9u32;
    for i in (1..values.len()).rev() {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        values.swap(i, (x as usize) % (i + 1));
    }
    let mut bytes = Vec::new();
    for v in &values {
        bytes.extend_from_slice(&v.to_be_bytes());
    }
    let expected: u32 = (1..=24u32).map(|k| k * k).sum();
    finish("quicksort", a, vec![(0x5000, bytes)], expected)
}

/// Word-wise memcpy of 64 words from `0x6000` to `0x6800`, then checksum of
/// the destination.
pub fn memcpy() -> Kernel {
    let mut a = Assembler::new();
    a.emit(Insn::Addi { rt: R9, ra: R0, si: 0x6000 });
    a.emit(Insn::Addi { rt: R10, ra: R0, si: 0x6800 });
    a.emit(Insn::Addi { rt: R11, ra: R0, si: 64 });
    a.label("copy");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R11, si: 0 });
    a.beq(CR0, "sum");
    a.emit(Insn::Lwz { rt: R12, ra: R9, d: 0 });
    a.emit(Insn::Stw { rs: R12, ra: R10, d: 0 });
    a.emit(Insn::Addi { rt: R9, ra: R9, si: 4 });
    a.emit(Insn::Addi { rt: R10, ra: R10, si: 4 });
    a.emit(Insn::Addi { rt: R11, ra: R11, si: -1 });
    a.b("copy");
    a.label("sum");
    a.emit(Insn::Addi { rt: R10, ra: R0, si: 0x6800 });
    a.emit(Insn::Addi { rt: R11, ra: R0, si: 64 });
    a.emit(Insn::Addi { rt: R3, ra: R0, si: 0 });
    a.label("sl");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R11, si: 0 });
    a.beq(CR0, "done");
    a.emit(Insn::Lwz { rt: R12, ra: R10, d: 0 });
    a.emit(Insn::Xor { ra: R3, rs: R3, rb: R12, rc: false });
    a.emit(Insn::Addi { rt: R10, ra: R10, si: 4 });
    a.emit(Insn::Addi { rt: R11, ra: R11, si: -1 });
    a.b("sl");
    a.label("done");
    a.emit(Insn::Sc);

    let mut bytes = Vec::new();
    let mut expected = 0u32;
    for i in 0..64u32 {
        let v = i.wrapping_mul(0x0101_0101) ^ 0x5a5a;
        bytes.extend_from_slice(&v.to_be_bytes());
        expected ^= v;
    }
    finish("memcpy", a, vec![(0x6000, bytes)], expected)
}

/// Binary search over 32 sorted words at `0x7000`; returns the index of 77
/// (which is at position 19 given the generator below).
pub fn binsearch() -> Kernel {
    let mut a = Assembler::new();
    a.emit(Insn::Addi { rt: R9, ra: R0, si: 0x7000 });
    a.emit(Insn::Addi { rt: R4, ra: R0, si: 0 }); // lo
    a.emit(Insn::Addi { rt: R5, ra: R0, si: 31 }); // hi
    a.emit(Insn::Addi { rt: R6, ra: R0, si: 77 }); // needle
    a.emit(Insn::Addi { rt: R3, ra: R0, si: -1 }); // result
    a.label("loop");
    a.emit(Insn::Cmpw { bf: CR0, ra: R4, rb: R5 });
    a.bgt(CR0, "done");
    a.emit(Insn::Add { rt: R7, ra: R4, rb: R5, rc: false });
    a.emit(Insn::Srawi { ra: R7, rs: R7, sh: 1, rc: false }); // mid
    a.emit(Insn::Rlwinm { ra: R8, rs: R7, sh: 2, mb: 0, me: 29, rc: false });
    a.emit(Insn::Lwzx { rt: R10, ra: R9, rb: R8 });
    a.emit(Insn::Cmpw { bf: CR0, ra: R10, rb: R6 });
    a.beq(CR0, "found");
    a.blt(CR0, "go_right");
    a.emit(Insn::Addi { rt: R5, ra: R7, si: -1 });
    a.b("loop");
    a.label("go_right");
    a.emit(Insn::Addi { rt: R4, ra: R7, si: 1 });
    a.b("loop");
    a.label("found");
    a.emit(Insn::Or { ra: R3, rs: R7, rb: R7, rc: false });
    a.label("done");
    a.emit(Insn::Sc);

    // Sorted array: a[i] = 4i + 1 -> a[19] = 77.
    let mut bytes = Vec::new();
    for i in 0..32u32 {
        bytes.extend_from_slice(&(4 * i + 1).to_be_bytes());
    }
    finish("binsearch", a, vec![(0x7000, bytes)], 19)
}

/// 4×4 integer matrix multiply at `0x7800`/`0x7840` into `0x7880`, checksum
/// of the product.
pub fn matmul() -> Kernel {
    let mut a = Assembler::new();
    a.emit(Insn::Addi { rt: R20, ra: R0, si: 0 }); // i
    a.label("li_");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R20, si: 4 });
    a.bge(CR0, "sum");
    a.emit(Insn::Addi { rt: R21, ra: R0, si: 0 }); // j
    a.label("lj");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R21, si: 4 });
    a.bge(CR0, "nexti");
    a.emit(Insn::Addi { rt: R22, ra: R0, si: 0 }); // k
    a.emit(Insn::Addi { rt: R23, ra: R0, si: 0 }); // acc
    a.label("lk");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R22, si: 4 });
    a.bge(CR0, "store");
    // acc += A[i][k] * B[k][j]
    a.emit(Insn::Rlwinm { ra: R9, rs: R20, sh: 4, mb: 0, me: 27, rc: false }); // 16*i
    a.emit(Insn::Rlwinm { ra: R10, rs: R22, sh: 2, mb: 0, me: 29, rc: false }); // 4*k
    a.emit(Insn::Add { rt: R9, ra: R9, rb: R10, rc: false });
    a.emit(Insn::Addi { rt: R9, ra: R9, si: 0x7800 }); // A base
    a.emit(Insn::Lwz { rt: R11, ra: R9, d: 0 });
    a.emit(Insn::Rlwinm { ra: R9, rs: R22, sh: 4, mb: 0, me: 27, rc: false }); // 16*k
    a.emit(Insn::Rlwinm { ra: R10, rs: R21, sh: 2, mb: 0, me: 29, rc: false }); // 4*j
    a.emit(Insn::Add { rt: R9, ra: R9, rb: R10, rc: false });
    a.emit(Insn::Addi { rt: R9, ra: R9, si: 0x7840 }); // B base
    a.emit(Insn::Lwz { rt: R12, ra: R9, d: 0 });
    a.emit(Insn::Mullw { rt: R11, ra: R11, rb: R12, rc: false });
    a.emit(Insn::Add { rt: R23, ra: R23, rb: R11, rc: false });
    a.emit(Insn::Addi { rt: R22, ra: R22, si: 1 });
    a.b("lk");
    a.label("store");
    a.emit(Insn::Rlwinm { ra: R9, rs: R20, sh: 4, mb: 0, me: 27, rc: false });
    a.emit(Insn::Rlwinm { ra: R10, rs: R21, sh: 2, mb: 0, me: 29, rc: false });
    a.emit(Insn::Add { rt: R9, ra: R9, rb: R10, rc: false });
    a.emit(Insn::Addi { rt: R9, ra: R9, si: 0x7880 }); // C base
    a.emit(Insn::Stw { rs: R23, ra: R9, d: 0 });
    a.emit(Insn::Addi { rt: R21, ra: R21, si: 1 });
    a.b("lj");
    a.label("nexti");
    a.emit(Insn::Addi { rt: R20, ra: R20, si: 1 });
    a.b("li_");
    a.label("sum");
    a.emit(Insn::Addi { rt: R9, ra: R0, si: 0x7880 });
    a.emit(Insn::Addi { rt: R10, ra: R0, si: 16 });
    a.emit(Insn::Addi { rt: R3, ra: R0, si: 0 });
    a.label("sl");
    a.emit(Insn::Cmpwi { bf: CR0, ra: R10, si: 0 });
    a.beq(CR0, "done");
    a.emit(Insn::Lwz { rt: R12, ra: R9, d: 0 });
    a.emit(Insn::Add { rt: R3, ra: R3, rb: R12, rc: false });
    a.emit(Insn::Addi { rt: R9, ra: R9, si: 4 });
    a.emit(Insn::Addi { rt: R10, ra: R10, si: -1 });
    a.b("sl");
    a.label("done");
    a.emit(Insn::Sc);

    // A[i][j] = i + j, B[i][j] = i * j + 1, computed expectation in host.
    let a_mat: Vec<u32> = (0..16).map(|x| (x / 4 + x % 4) as u32).collect();
    let b_mat: Vec<u32> = (0..16).map(|x| ((x / 4) * (x % 4) + 1) as u32).collect();
    let mut expected = 0u32;
    for i in 0..4 {
        for j in 0..4 {
            let mut acc = 0u32;
            for k in 0..4 {
                acc = acc.wrapping_add(a_mat[i * 4 + k].wrapping_mul(b_mat[k * 4 + j]));
            }
            expected = expected.wrapping_add(acc);
        }
    }
    let mut bytes_a = Vec::new();
    for v in &a_mat {
        bytes_a.extend_from_slice(&v.to_be_bytes());
    }
    let mut bytes_b = Vec::new();
    for v in &b_mat {
        bytes_b.extend_from_slice(&v.to_be_bytes());
    }
    finish("matmul", a, vec![(0x7800, bytes_a), (0x7840, bytes_b)], expected)
}

/// Every kernel, for exhaustive compressed-execution tests.
pub fn all() -> Vec<Kernel> {
    vec![
        fib(),
        sum_array(),
        bubble_sort(),
        strlen(),
        hash_string(),
        gcd(),
        sieve(),
        call_frames(),
        quicksort(),
        memcpy(),
        binsearch(),
        matmul(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::LinearFetcher;
    use crate::machine::Machine;
    use crate::run::run;

    #[test]
    fn kernels_produce_expected_results_uncompressed() {
        for k in all() {
            let mut machine = Machine::new(1 << 20);
            k.apply_init(&mut machine);
            let mut fetch = LinearFetcher::new(k.module.code.clone());
            let result = run(&mut machine, &mut fetch, 0, 1_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert_eq!(result.exit_code, k.expected, "kernel {}", k.name);
        }
    }

    #[test]
    fn kernels_are_distinct_programs() {
        let kernels = all();
        assert_eq!(kernels.len(), 12);
        for pair in kernels.windows(2) {
            assert_ne!(pair[0].module.code, pair[1].module.code);
        }
    }
}
