//! The execution loop gluing a [`Core`] to a fetch engine.

use crate::fetch::{Fetch, FetchStats};
use crate::machine::{Core, MachineError, Outcome};

/// Result of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// The core's exit value at the halt (`r3` on PowerPC, `$v0` on MIPS).
    pub exit_code: u32,
    /// Instructions executed (including the halting one).
    pub steps: u64,
    /// Final fetch counters.
    pub stats: FetchStats,
}

/// Runs until the core halts or the step budget is exhausted.
///
/// # Errors
///
/// Propagates any [`MachineError`]; [`MachineError::StepLimit`] if the
/// program does not halt within `max_steps`.
pub fn run(
    core: &mut dyn Core,
    fetch: &mut dyn Fetch,
    entry: u64,
    max_steps: u64,
) -> Result<RunResult, MachineError> {
    let mut pc = entry;
    for step in 0..max_steps {
        let fetched = fetch.fetch(pc)?;
        match core.step_word(fetched.word, pc, fetched.next_pc, fetch.granule())? {
            Outcome::Next => pc = fetched.next_pc,
            Outcome::Branch(target) => pc = target,
            Outcome::Halt => {
                return Ok(RunResult {
                    exit_code: core.exit_code(),
                    steps: step + 1,
                    stats: fetch.stats(),
                })
            }
        }
    }
    Err(MachineError::StepLimit)
}

/// Like [`run`], invoking `observer` before each executed instruction with
/// `(pc, word)` — the debugging/tracing hook (`codense-cache`'s
/// `TracingFetch` is the memory-reference counterpart).
///
/// # Errors
///
/// Same as [`run`].
pub fn run_traced(
    core: &mut dyn Core,
    fetch: &mut dyn Fetch,
    entry: u64,
    max_steps: u64,
    mut observer: impl FnMut(u64, u32),
) -> Result<RunResult, MachineError> {
    let mut pc = entry;
    for step in 0..max_steps {
        let fetched = fetch.fetch(pc)?;
        observer(pc, fetched.word);
        match core.step_word(fetched.word, pc, fetched.next_pc, fetch.granule())? {
            Outcome::Next => pc = fetched.next_pc,
            Outcome::Branch(target) => pc = target,
            Outcome::Halt => {
                return Ok(RunResult {
                    exit_code: core.exit_code(),
                    steps: step + 1,
                    stats: fetch.stats(),
                })
            }
        }
    }
    Err(MachineError::StepLimit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::LinearFetcher;
    use crate::machine::Machine;
    use codense_ppc::asm::Assembler;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    #[test]
    fn tiny_program_halts() {
        let mut a = Assembler::new();
        a.emit(Insn::Addi { rt: R3, ra: R0, si: 42 });
        a.emit(Insn::Sc);
        let code = a.finish().unwrap();
        let mut machine = Machine::new(4096);
        let mut fetch = LinearFetcher::new(code);
        let result = run(&mut machine, &mut fetch, 0, 100).unwrap();
        assert_eq!(result.exit_code, 42);
        assert_eq!(result.steps, 2);
    }

    #[test]
    fn traced_run_sees_every_step() {
        let mut a = Assembler::new();
        a.emit(Insn::Addi { rt: R3, ra: R0, si: 1 });
        a.emit(Insn::Addi { rt: R3, ra: R3, si: 2 });
        a.emit(Insn::Sc);
        let code = a.finish().unwrap();
        let mut machine = Machine::new(4096);
        let mut fetch = LinearFetcher::new(code);
        let mut trace = Vec::new();
        let result = super::run_traced(&mut machine, &mut fetch, 0, 100, |pc, word| {
            trace.push((pc, word));
        })
        .unwrap();
        assert_eq!(result.steps, 3);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].0, 0);
        assert_eq!(codense_ppc::decode(trace[2].1), Insn::Sc);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut a = Assembler::new();
        a.label("x");
        a.b("x");
        let code = a.finish().unwrap();
        let mut machine = Machine::new(4096);
        let mut fetch = LinearFetcher::new(code);
        assert_eq!(run(&mut machine, &mut fetch, 0, 50), Err(MachineError::StepLimit));
    }
}
