//! The execution loops gluing a [`Core`] to a fetch engine: the generic
//! per-step loop ([`run`]) and the predecoded threaded-dispatch loop
//! ([`run_predecoded`]) that makes SPEC-scale corpus programs runnable.

use crate::fetch::{Fetch, FetchStats, PredecodedFetcher, RunCounters};
use crate::machine::{Core, MachineError, Outcome};
use codense_isa::PredecodeCore;

/// Result of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// The core's exit value at the halt (`r3` on PowerPC, `$v0` on MIPS).
    pub exit_code: u32,
    /// Instructions executed (including the halting one).
    pub steps: u64,
    /// Final fetch counters.
    pub stats: FetchStats,
}

/// Runs until the core halts or the step budget is exhausted.
///
/// # Errors
///
/// Propagates any [`MachineError`]; [`MachineError::StepLimit`] if the
/// program does not halt within `max_steps`.
pub fn run(
    core: &mut dyn Core,
    fetch: &mut dyn Fetch,
    entry: u64,
    max_steps: u64,
) -> Result<RunResult, MachineError> {
    let mut pc = entry;
    for step in 0..max_steps {
        let fetched = fetch.fetch(pc)?;
        match core.step_word(fetched.word, pc, fetched.next_pc, fetch.granule())? {
            Outcome::Next => pc = fetched.next_pc,
            Outcome::Branch(target) => pc = target,
            Outcome::Halt => {
                return Ok(RunResult {
                    exit_code: core.exit_code(),
                    steps: step + 1,
                    stats: fetch.stats(),
                })
            }
        }
    }
    Err(MachineError::StepLimit)
}

/// Like [`run`], invoking `observer` before each executed instruction with
/// `(pc, word)` — the debugging/tracing hook (`codense-cache`'s
/// `TracingFetch` is the memory-reference counterpart).
///
/// # Errors
///
/// Same as [`run`].
pub fn run_traced(
    core: &mut dyn Core,
    fetch: &mut dyn Fetch,
    entry: u64,
    max_steps: u64,
    mut observer: impl FnMut(u64, u32),
) -> Result<RunResult, MachineError> {
    let mut pc = entry;
    for step in 0..max_steps {
        let fetched = fetch.fetch(pc)?;
        observer(pc, fetched.word);
        match core.step_word(fetched.word, pc, fetched.next_pc, fetch.granule())? {
            Outcome::Next => pc = fetched.next_pc,
            Outcome::Branch(target) => pc = target,
            Outcome::Halt => {
                return Ok(RunResult {
                    exit_code: core.exit_code(),
                    steps: step + 1,
                    stats: fetch.stats(),
                })
            }
        }
    }
    Err(MachineError::StepLimit)
}

/// The predecoded threaded-dispatch loop: [`run`] semantics at a fraction
/// of the per-step cost.
///
/// Three costs are hoisted out of the step cycle relative to
/// [`run`]-over-[`crate::fetch::CompressedFetcher`]:
///
/// * **parse** — items are replayed from the fetcher's decoded-item cache
///   (first touch parses and fills, exactly like the `Fetch` impl);
/// * **decode** — each cached word is decoded once into the backend's
///   decoded form ([`PredecodeCore::predecode`]) and the loop dispatches
///   [`PredecodeCore::step_insn`] directly, monomorphized per backend (no
///   virtual calls, no per-step re-decode);
/// * **bookkeeping** — [`FetchStats`]/telemetry updates accumulate in
///   locals and flush when the loop exits (halt, fault, or step limit).
///   Final counter values are byte-exact with the per-fetch path; only the
///   update granularity differs.
///
/// The decoded mirror tracks the fetcher's flush epoch, so capacity-driven
/// evictions and [`PredecodedFetcher::invalidate`] invalidate the decoded
/// side too.
///
/// # Errors
///
/// Exactly as [`run`]: any [`MachineError`] the program raises, or
/// [`MachineError::StepLimit`] if it does not halt within `max_steps`.
/// Stats and telemetry are flushed before the error propagates.
pub fn run_predecoded<C: PredecodeCore>(
    core: &mut C,
    fetch: &mut PredecodedFetcher,
    entry: u64,
    max_steps: u64,
) -> Result<RunResult, MachineError> {
    use crate::fetch::TAG_INSN;

    let granule = fetch.granule();
    // The entry table and word pool live in locals for the duration of the
    // loop (loop-invariant pointers on the hot path); fills go through
    // `fill_detached`. They are reattached before counters are absorbed.
    let (mut entries, mut side, mut pool) = fetch.take_storage();
    // Decoded mirror of the word pool (same indices). The fetcher is
    // exclusively borrowed for the whole loop, so the pool only changes
    // through our own fills — the mirror needs syncing only when a fill
    // happens or when a cache hit points past it (entries filled before
    // this run started).
    let mut decoded: Vec<C::Insn> = Vec::new();
    let mut generation = fetch.generation();
    let mut c = RunCounters::default();
    let mut pc = entry;
    let mut expect_pc = u64::MAX;
    // Expansion-drain state: pool range, position, owning PC, successor.
    let (mut dstart, mut dlen, mut dpos) = (0usize, 0usize, 0usize);
    let (mut dpc, mut dafter) = (u64::MAX, 0u64);

    let outcome = 'run: {
        for step in 0..max_steps {
            if pc != expect_pc && !pc.is_multiple_of(8) {
                c.realigns += 1;
            }
            let insn: &C::Insn;
            let next_pc;
            if pc == dpc && dpos < dlen {
                // Sequential flow inside an expanded codeword: replay the
                // decoded pool directly.
                insn = &decoded[dstart + dpos];
                dpos += 1;
                next_pc = if dpos < dlen { dpc } else { dafter };
                c.expanded += 1;
            } else {
                let e = match entries.get(pc as usize) {
                    Some(&e) if e != 0 => e,
                    _ => {
                        // Miss (or out-of-range pc): parse and fill, then
                        // sync the mirror. A capacity flush bumps the
                        // generation and restarts pool indices from zero,
                        // so drop the stale mirror first; any in-flight
                        // expansion state is overwritten below (both tag
                        // branches reassign `dpc`).
                        let e = match fetch.fill_detached(pc, &mut entries, &mut side, &mut pool) {
                            Ok(e) => e,
                            Err(err) => {
                                c.insns = step;
                                break 'run Err(err);
                            }
                        };
                        if fetch.generation() != generation {
                            generation = fetch.generation();
                            decoded.clear();
                        }
                        while decoded.len() < pool.len() {
                            decoded.push(C::predecode(pool[decoded.len()]));
                        }
                        e
                    }
                };
                let (tag, consumed, len, start) = crate::fetch::unpack_entry(e, &side);
                if start + len > decoded.len() {
                    // A hit on an entry cached before this run started:
                    // the pool already holds its words, the mirror just
                    // hasn't caught up (no fill happened, so no flush can
                    // have either).
                    while decoded.len() < pool.len() {
                        decoded.push(C::predecode(pool[decoded.len()]));
                    }
                }
                c.nibbles += consumed;
                if tag == TAG_INSN {
                    dpc = u64::MAX;
                    next_pc = pc + consumed;
                } else {
                    c.codewords += 1;
                    c.expanded += 1;
                    (dstart, dlen, dpos) = (start, len, 1);
                    (dpc, dafter) = (pc, pc + consumed);
                    next_pc = if dlen > 1 { pc } else { dafter };
                }
                insn = &decoded[start];
            }
            expect_pc = next_pc;
            match core.step_insn(insn, pc, next_pc, granule) {
                Ok(Outcome::Next) => pc = next_pc,
                Ok(Outcome::Branch(target)) => pc = target,
                Ok(Outcome::Halt) => {
                    c.insns = step + 1;
                    break 'run Ok(step + 1);
                }
                Err(err) => {
                    c.insns = step + 1;
                    break 'run Err(err);
                }
            }
        }
        c.insns = max_steps;
        Err(MachineError::StepLimit)
    };
    fetch.restore_storage(entries, side, pool);
    fetch.absorb(&c, expect_pc, (dstart, dlen, dpos, dpc, dafter));
    let steps = outcome?;
    Ok(RunResult { exit_code: core.exit_code(), steps, stats: fetch.stats() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::LinearFetcher;
    use crate::machine::Machine;
    use codense_ppc::asm::Assembler;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    #[test]
    fn tiny_program_halts() {
        let mut a = Assembler::new();
        a.emit(Insn::Addi { rt: R3, ra: R0, si: 42 });
        a.emit(Insn::Sc);
        let code = a.finish().unwrap();
        let mut machine = Machine::new(4096);
        let mut fetch = LinearFetcher::new(code);
        let result = run(&mut machine, &mut fetch, 0, 100).unwrap();
        assert_eq!(result.exit_code, 42);
        assert_eq!(result.steps, 2);
    }

    #[test]
    fn traced_run_sees_every_step() {
        let mut a = Assembler::new();
        a.emit(Insn::Addi { rt: R3, ra: R0, si: 1 });
        a.emit(Insn::Addi { rt: R3, ra: R3, si: 2 });
        a.emit(Insn::Sc);
        let code = a.finish().unwrap();
        let mut machine = Machine::new(4096);
        let mut fetch = LinearFetcher::new(code);
        let mut trace = Vec::new();
        let result = super::run_traced(&mut machine, &mut fetch, 0, 100, |pc, word| {
            trace.push((pc, word));
        })
        .unwrap();
        assert_eq!(result.steps, 3);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].0, 0);
        assert_eq!(codense_ppc::decode(trace[2].1), Insn::Sc);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut a = Assembler::new();
        a.label("x");
        a.b("x");
        let code = a.finish().unwrap();
        let mut machine = Machine::new(4096);
        let mut fetch = LinearFetcher::new(code);
        assert_eq!(run(&mut machine, &mut fetch, 0, 50), Err(MachineError::StepLimit));
    }
}
