//! Instruction fetch engines: the two paths of the paper's Fig 3, plus the
//! predecoded fast path that makes SPEC-scale programs runnable.
//!
//! [`LinearFetcher`] is the ordinary processor front end: the PC advances 8
//! nibbles (one word) per instruction. [`CompressedFetcher`] is the modified
//! front end: it parses the packed compressed image nibble by nibble,
//! detects escape prefixes, and expands codewords through the on-chip
//! dictionary into an expansion buffer that feeds the core one instruction
//! at a time. It re-parses the stream on every fetch — faithful to the
//! hardware model and the reference against which everything else is
//! checked, but too slow for multi-million-step corpus runs.
//!
//! [`PredecodedFetcher`] is the fast path: a decoded-item cache keyed by
//! compressed-stream (nibble) offset. The first fetch of an item parses it
//! exactly as [`CompressedFetcher`] would and caches the outcome — the
//! delivered words, the item kind, and the nibbles it consumes; every later
//! fetch of that offset replays the cache with no parsing, no dictionary
//! copy, and no allocation. Faults are never cached. The engine is
//! byte-exact with [`CompressedFetcher`]: same delivered stream, same
//! [`FetchStats`], same telemetry counters (`vm_fetch_*`), so the cycle
//! model and `BENCH_hybrid.json` stay valid. [`crate::run::run_predecoded`]
//! drives it with a threaded dispatch loop that also hoists instruction
//! *decode* out of the step cycle (see [`codense_isa::PredecodeCore`]).
//!
//! Fetch engines deliver raw instruction *words* — decode belongs to the
//! target core ([`codense_isa::Core::step_word`]), which keeps the fetch
//! path ISA-independent.
//!
//! All engines report [`FetchStats`], making the fetch-bandwidth effect of
//! compression measurable (the I-cache angle of [Chen97]).

use codense_core::encoding::{read_item_coded, Item};
use codense_core::nibbles::NibbleReader;
use codense_core::{telemetry, CompressedProgram, HuffCode};
use codense_isa::IsaRef;

use crate::machine::MachineError;

/// Counters maintained by a fetch engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Instructions delivered to the core.
    pub insns: u64,
    /// Nibbles consumed from program memory.
    pub nibbles_fetched: u64,
    /// Codewords expanded.
    pub codewords: u64,
    /// Instructions delivered out of dictionary expansions.
    pub expanded_insns: u64,
    /// Dictionary-cache hits (only counted when a dictionary cache is
    /// configured; see [`CompressedFetcher::with_dict_cache`]).
    pub dict_hits: u64,
    /// Dictionary-cache misses.
    pub dict_misses: u64,
    /// Bytes of dictionary entries loaded from data memory on misses.
    pub dict_bytes_loaded: u64,
    /// Nibble-PC realignments: control transfers into the packed stream at
    /// an address that is not word-aligned, forcing the fetch unit to
    /// realign mid-word (sequential flow streams and never realigns).
    pub realigns: u64,
}

impl FetchStats {
    /// Mean program-memory bits fetched per delivered instruction (32 for
    /// an uncompressed program; lower when codewords do their job).
    pub fn bits_per_insn(&self) -> f64 {
        if self.insns == 0 {
            return 0.0;
        }
        4.0 * self.nibbles_fetched as f64 / self.insns as f64
    }
}

/// One fetched instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fetched {
    /// The raw instruction word (the core decodes it).
    pub word: u32,
    /// Fetch-domain address of the following instruction (what sequential
    /// flow and `lk` should use).
    pub next_pc: u64,
}

/// An instruction-fetch engine with a nibble-granular PC.
pub trait Fetch {
    /// Fetches the instruction at `pc`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::FetchFault`] if `pc` does not address an
    /// instruction boundary in this engine's program.
    fn fetch(&mut self, pc: u64) -> Result<Fetched, MachineError>;

    /// Branch-offset unit in nibbles (8 uncompressed; the smallest-codeword
    /// size for compressed programs).
    fn granule(&self) -> u32;

    /// Fetch counters so far.
    fn stats(&self) -> FetchStats;
}

/// The conventional fetch path over an uncompressed text image.
#[derive(Debug, Clone)]
pub struct LinearFetcher {
    code: Vec<u32>,
    stats: FetchStats,
}

impl LinearFetcher {
    /// Creates a fetcher over instruction words (instruction `i` lives at
    /// nibble address `8 * i`).
    pub fn new(code: Vec<u32>) -> LinearFetcher {
        LinearFetcher { code, stats: FetchStats::default() }
    }
}

impl Fetch for LinearFetcher {
    fn fetch(&mut self, pc: u64) -> Result<Fetched, MachineError> {
        if !pc.is_multiple_of(8) {
            return Err(MachineError::FetchFault { pc });
        }
        let idx = (pc / 8) as usize;
        let word = *self.code.get(idx).ok_or(MachineError::FetchFault { pc })?;
        self.stats.insns += 1;
        self.stats.nibbles_fetched += 8;
        telemetry::VM_FETCH_LINEAR_INSNS.inc();
        telemetry::VM_FETCH_NIBBLES.add(8);
        Ok(Fetched { word, next_pc: pc + 8 })
    }

    fn granule(&self) -> u32 {
        8
    }

    fn stats(&self) -> FetchStats {
        self.stats
    }
}

/// The compressed-program fetch path: escape detection, dictionary
/// expansion buffer, nibble-granular PC.
///
/// Sequential flow inside an expanded codeword keeps the PC at the
/// codeword's address while the buffer drains; branches always target
/// codeword boundaries (guaranteed by the compressor), which flush the
/// buffer.
#[derive(Debug, Clone)]
pub struct CompressedFetcher {
    image: Vec<u8>,
    encoding: codense_core::EncodingKind,
    /// The ISA whose escape bytes introduce stream items.
    isa: IsaRef,
    /// Dictionary entries by codeword rank.
    by_rank: Vec<Vec<u32>>,
    /// Canonical Huffman decode table, rebuilt from codeword lengths
    /// ([`codense_core::EncodingKind::Huffman`] programs only). `None` for
    /// other encodings — or when a container carried unusable lengths, in
    /// which case every fetch faults instead of panicking.
    huffman: Option<HuffCode>,
    /// Remaining instructions of the codeword being drained.
    buffer: Vec<u32>,
    /// Position within the draining codeword.
    buffer_pos: usize,
    /// PC the buffer belongs to.
    buffer_pc: u64,
    /// Address of the atom following the buffered codeword.
    after_buffer: u64,
    /// Optional on-demand dictionary cache (the paper's §3.3 alternative to
    /// a fully on-chip dictionary): capacity in entries, plus the resident
    /// set in LRU order (most recent last). `None` = whole dictionary
    /// on-chip, no load traffic.
    dict_cache: Option<(usize, Vec<u32>)>,
    /// `next_pc` of the previous delivery, for realignment detection:
    /// a fetch anywhere else is a control transfer. `u64::MAX` before the
    /// first fetch (entry is conventionally aligned at 0).
    expect_pc: u64,
    stats: FetchStats,
}

impl CompressedFetcher {
    /// Builds the fetch engine from a compressed program (the image and the
    /// dictionary; atoms/addresses are not consulted — the engine parses
    /// the byte image exactly as hardware would). The program's ISA is used
    /// for escape detection.
    pub fn new(program: &CompressedProgram) -> CompressedFetcher {
        let mut by_rank = vec![Vec::new(); program.dictionary.len()];
        for rank in 0..program.dictionary.len() as u32 {
            let entry = program.dictionary.entry_of_rank(rank);
            by_rank[rank as usize] = program.dictionary.entry(entry).words.clone();
        }
        CompressedFetcher {
            image: program.image.clone(),
            encoding: program.encoding,
            isa: program.isa,
            by_rank,
            huffman: program.huffman.clone(),
            buffer: Vec::new(),
            buffer_pos: 0,
            buffer_pc: u64::MAX,
            after_buffer: 0,
            dict_cache: None,
            expect_pc: u64::MAX,
            stats: FetchStats::default(),
        }
    }

    /// Builds the fetch engine from a deserialized container image (see
    /// `codense_core::container`): what a real decoder boots from. The
    /// container format does not record an ISA; this assumes PowerPC (see
    /// [`from_image_with`](Self::from_image_with)).
    pub fn from_image(image: &codense_core::container::ProgramImage) -> CompressedFetcher {
        CompressedFetcher::from_image_with(image, IsaRef(&codense_ppc::ISA))
    }

    /// Like [`from_image`](Self::from_image), for an explicit target ISA.
    pub fn from_image_with(
        image: &codense_core::container::ProgramImage,
        isa: IsaRef,
    ) -> CompressedFetcher {
        CompressedFetcher {
            image: image.image.clone(),
            encoding: image.encoding,
            isa,
            by_rank: image.dictionary_by_rank.clone(),
            // Hostile or absent lengths yield `None`; Huffman fetches then
            // fault rather than panic.
            huffman: HuffCode::from_nibble_lengths(image.huffman_lengths.clone()),
            buffer: Vec::new(),
            buffer_pos: 0,
            buffer_pc: u64::MAX,
            after_buffer: 0,
            dict_cache: None,
            expect_pc: u64::MAX,
            stats: FetchStats::default(),
        }
    }

    /// Configures an on-demand dictionary cache of `entries` slots (LRU).
    ///
    /// Models the paper's §3.3 alternative: "if the dictionary is larger,
    /// it might be kept as a data segment of the compressed program and
    /// each dictionary entry could be loaded as needed". Expansions of
    /// uncached entries count [`FetchStats::dict_misses`] and charge the
    /// entry's bytes to [`FetchStats::dict_bytes_loaded`].
    pub fn with_dict_cache(mut self, entries: usize) -> CompressedFetcher {
        self.dict_cache = Some((entries.max(1), Vec::new()));
        self
    }

    /// Runs the dictionary-cache bookkeeping for an expansion of `rank`.
    fn touch_dict(&mut self, rank: u32) {
        let Some((capacity, resident)) = &mut self.dict_cache else { return };
        if let Some(pos) = resident.iter().position(|&r| r == rank) {
            resident.remove(pos);
            resident.push(rank);
            self.stats.dict_hits += 1;
        } else {
            self.stats.dict_misses += 1;
            self.stats.dict_bytes_loaded += 4 * self.by_rank[rank as usize].len() as u64;
            if resident.len() == *capacity {
                resident.remove(0);
            }
            resident.push(rank);
        }
    }

    fn deliver_buffered(&mut self) -> Fetched {
        let word = self.buffer[self.buffer_pos];
        self.buffer_pos += 1;
        self.stats.insns += 1;
        self.stats.expanded_insns += 1;
        telemetry::VM_FETCH_BUFFERED_INSNS.inc();
        let next_pc =
            if self.buffer_pos < self.buffer.len() { self.buffer_pc } else { self.after_buffer };
        self.expect_pc = next_pc;
        Fetched { word, next_pc }
    }
}

impl Fetch for CompressedFetcher {
    fn fetch(&mut self, pc: u64) -> Result<Fetched, MachineError> {
        // A fetch anywhere but the previous delivery's `next_pc` is a
        // control transfer; when it lands mid-word the fetch unit must
        // realign its nibble pointer (the cost model charges this).
        if pc != self.expect_pc && !pc.is_multiple_of(8) {
            self.stats.realigns += 1;
            telemetry::VM_FETCH_REALIGNS.inc();
        }
        // Drain the expansion buffer while sequential flow stays on it.
        if pc == self.buffer_pc && self.buffer_pos < self.buffer.len() {
            return Ok(self.deliver_buffered());
        }
        let mut r = NibbleReader::new(&self.image);
        r.seek(pc);
        let before = r.pos();
        match read_item_coded(self.encoding, self.isa, self.huffman.as_ref(), &mut r) {
            Some(Item::Insn(word)) => {
                self.stats.insns += 1;
                self.stats.nibbles_fetched += r.pos() - before;
                // Under every encoding an uncompressed instruction in the
                // stream is introduced by an escape prefix.
                telemetry::VM_FETCH_ESCAPES.inc();
                telemetry::VM_FETCH_NIBBLES.add(r.pos() - before);
                // Leaving any previous codeword behind.
                self.buffer_pc = u64::MAX;
                self.expect_pc = r.pos();
                Ok(Fetched { word, next_pc: r.pos() })
            }
            Some(Item::Codeword(rank)) => {
                let seq =
                    self.by_rank.get(rank as usize).ok_or(MachineError::FetchFault { pc })?.clone();
                if seq.is_empty() {
                    return Err(MachineError::FetchFault { pc });
                }
                self.stats.codewords += 1;
                self.stats.nibbles_fetched += r.pos() - before;
                telemetry::VM_FETCH_CODEWORDS.inc();
                telemetry::VM_FETCH_NIBBLES.add(r.pos() - before);
                let after = r.pos();
                self.touch_dict(rank);
                self.buffer = seq;
                self.buffer_pos = 0;
                self.buffer_pc = pc;
                self.after_buffer = after;
                Ok(self.deliver_buffered())
            }
            None => Err(MachineError::FetchFault { pc }),
        }
    }

    fn granule(&self) -> u32 {
        self.encoding.granule_nibbles()
    }

    fn stats(&self) -> FetchStats {
        self.stats
    }
}

// ---- predecoded fast path -------------------------------------------------

/// Cache-entry tag: offset holds an escaped (uncompressed) instruction.
pub(crate) const TAG_INSN: u64 = 1;
/// Cache-entry tag: offset holds a codeword.
const TAG_CODEWORD: u64 = 2;
/// Cache-entry tag: the entry overflows the packed form; the payload is an
/// index into the side table of wide entries.
const TAG_SIDE: u64 = 3;

/// Packs a decode-cache entry into one table word: tag in bits 30–31,
/// consumed nibbles in bits 26–29, delivered-word count in bits 22–25,
/// pool start index in bits 0–21. The all-zero word means "not cached" (a
/// real entry always has a nonzero tag). The table is deliberately 32-bit:
/// the hot loop streams roughly one entry per executed instruction, so
/// halving the slot halves the table's cache traffic.
///
/// Returns `None` when a field overflows the packed form — a pool past
/// 4Mi words, a dictionary entry longer than 15 instructions, or an item
/// wider than 15 nibbles. Such entries go to the side table under
/// [`TAG_SIDE`].
fn pack_entry(tag: u64, consumed: u64, len: usize, start: usize) -> Option<u32> {
    if consumed < 1 << 4 && len < 1 << 4 && start < 1 << 22 {
        Some((tag as u32) << 30 | (consumed as u32) << 26 | (len as u32) << 22 | start as u32)
    } else {
        None
    }
}

/// Packs a wide (side-table) entry: tag in bits 62–63, consumed nibbles in
/// bits 48–61, delivered-word count in bits 32–47, pool start index in bits
/// 0–31.
fn pack_wide(tag: u64, consumed: u64, len: usize, start: usize) -> u64 {
    debug_assert!(consumed < 1 << 14 && len < 1 << 16 && start < 1 << 32);
    (tag << 62) | (consumed << 48) | ((len as u64) << 32) | start as u64
}

/// The `(tag, consumed_nibbles, delivered_len, pool_start)` of a table
/// entry, chasing [`TAG_SIDE`] indirections through `side`.
#[inline(always)]
pub(crate) fn unpack_entry(e: u32, side: &[u64]) -> (u64, u64, usize, usize) {
    let tag = (e >> 30) as u64;
    if tag == TAG_SIDE {
        let w = side[(e & 0x3fff_ffff) as usize];
        (w >> 62, (w >> 48) & 0x3fff, ((w >> 32) & 0xffff) as usize, (w & 0xffff_ffff) as usize)
    } else {
        (tag, ((e >> 26) & 0xf) as u64, ((e >> 22) & 0xf) as usize, (e & 0x3f_ffff) as usize)
    }
}

/// Counters a predecoded run loop accumulates locally and flushes in bulk —
/// the batched form of the per-fetch bookkeeping. Final [`FetchStats`] and
/// telemetry values are identical to per-fetch updates (the counters are
/// plain sums), only the update granularity differs.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct RunCounters {
    pub insns: u64,
    pub nibbles: u64,
    pub codewords: u64,
    pub expanded: u64,
    pub realigns: u64,
}

/// The predecoded fetch engine: [`CompressedFetcher`] semantics behind a
/// decoded-item cache keyed by compressed-stream offset.
///
/// Every nibble offset of the image has a cache slot. A miss parses the
/// item at that offset exactly as the re-parsing engine would (escape
/// detection, dictionary expansion, Huffman decode) and caches the
/// delivered words in a shared pool; a hit replays the pool with no
/// parsing and no allocation. Offsets that do not parse (mid-item PCs,
/// truncated streams) fault without being cached, so a bad branch target
/// faults on every attempt, just like the re-parsing engine.
///
/// The cache can be bounded with [`with_capacity`](Self::with_capacity)
/// (eviction is a wholesale flush, the hardware-realistic policy for a
/// predecode buffer) and dropped explicitly with
/// [`invalidate`](Self::invalidate) — e.g. after patching the image.
/// Flushing mid-expansion abandons the expansion buffer; the next fetch of
/// that codeword re-parses and redelivers it from its first instruction.
///
/// [`FetchStats`] and telemetry are byte-exact with the re-parsing engine
/// under its default configuration (the dictionary-cache model of
/// [`CompressedFetcher::with_dict_cache`] is not available here: a
/// predecoded engine never re-touches the dictionary).
#[derive(Debug, Clone)]
pub struct PredecodedFetcher {
    image: Vec<u8>,
    encoding: codense_core::EncodingKind,
    isa: IsaRef,
    huffman: Option<HuffCode>,
    by_rank: Vec<Vec<u32>>,
    /// One slot per nibble offset of the image; packed with [`pack_entry`],
    /// zero = empty.
    entries: Vec<u32>,
    /// Wide entries that overflow the packed table form ([`TAG_SIDE`]).
    side: Vec<u64>,
    /// Delivered instruction words of every cached item, contiguous per
    /// item.
    pool: Vec<u32>,
    /// Cached items (not pool words); bounded by `capacity`.
    filled: usize,
    capacity: usize,
    /// Bumped on every flush/invalidate so decoded-side mirrors (see
    /// [`crate::run::run_predecoded`]) know their pool indices died.
    generation: u64,
    // Expansion-drain state for the `Fetch` impl, mirroring
    // `CompressedFetcher` (start/len/pos index into `pool`).
    drain_start: usize,
    drain_len: usize,
    drain_pos: usize,
    buffer_pc: u64,
    after_buffer: u64,
    expect_pc: u64,
    stats: FetchStats,
}

impl PredecodedFetcher {
    /// Builds the engine from a compressed program. Parsing state matches
    /// [`CompressedFetcher::new`]; the cache starts empty and unbounded.
    pub fn new(program: &CompressedProgram) -> PredecodedFetcher {
        let mut by_rank = vec![Vec::new(); program.dictionary.len()];
        for rank in 0..program.dictionary.len() as u32 {
            let entry = program.dictionary.entry_of_rank(rank);
            by_rank[rank as usize] = program.dictionary.entry(entry).words.clone();
        }
        PredecodedFetcher::from_parts(
            program.image.clone(),
            program.encoding,
            program.isa,
            program.huffman.clone(),
            by_rank,
        )
    }

    /// Builds the engine from a deserialized container image for an
    /// explicit target ISA (the predecoded counterpart of
    /// [`CompressedFetcher::from_image_with`]).
    pub fn from_image_with(
        image: &codense_core::container::ProgramImage,
        isa: IsaRef,
    ) -> PredecodedFetcher {
        PredecodedFetcher::from_parts(
            image.image.clone(),
            image.encoding,
            isa,
            HuffCode::from_nibble_lengths(image.huffman_lengths.clone()),
            image.dictionary_by_rank.clone(),
        )
    }

    fn from_parts(
        image: Vec<u8>,
        encoding: codense_core::EncodingKind,
        isa: IsaRef,
        huffman: Option<HuffCode>,
        by_rank: Vec<Vec<u32>>,
    ) -> PredecodedFetcher {
        let nibbles = image.len() * 2;
        PredecodedFetcher {
            image,
            encoding,
            isa,
            huffman,
            by_rank,
            entries: vec![0; nibbles],
            side: Vec::new(),
            pool: Vec::new(),
            filled: 0,
            capacity: usize::MAX,
            generation: 0,
            drain_start: 0,
            drain_len: 0,
            drain_pos: 0,
            buffer_pc: u64::MAX,
            after_buffer: 0,
            expect_pc: u64::MAX,
            stats: FetchStats::default(),
        }
    }

    /// Bounds the cache at `items` cached items. Filling past the bound
    /// flushes the whole cache first (wholesale eviction), so a working set
    /// larger than the capacity thrashes but stays correct.
    pub fn with_capacity(mut self, items: usize) -> PredecodedFetcher {
        self.capacity = items.max(1);
        self
    }

    /// Drops every cached item (e.g. after the image has been repatched).
    /// Stats and telemetry are unaffected; subsequent fetches re-parse and
    /// re-fill on demand.
    pub fn invalidate(&mut self) {
        self.entries.fill(0);
        self.side.clear();
        self.pool.clear();
        self.flush_runtime_state();
    }

    /// The non-storage half of a flush: shared between [`invalidate`] and
    /// the detached-storage flush inside [`Self::fill_detached`].
    fn flush_runtime_state(&mut self) {
        self.filled = 0;
        self.generation += 1;
        // Pool indices died with the pool; abandon any in-flight expansion.
        self.buffer_pc = u64::MAX;
        self.drain_len = 0;
        self.drain_pos = 0;
    }

    /// Cached items currently resident.
    pub fn cached_items(&self) -> usize {
        self.filled
    }

    /// Flush epoch: bumped by every [`invalidate`](Self::invalidate),
    /// including capacity-driven ones.
    #[inline(always)]
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// The cache entry for `pc`, parsing and filling on a miss.
    ///
    /// # Errors
    ///
    /// [`MachineError::FetchFault`] if `pc` does not address a parseable
    /// item; the fault is not cached.
    pub(crate) fn lookup_or_fill(&mut self, pc: u64) -> Result<u32, MachineError> {
        match self.entries.get(pc as usize) {
            Some(0) => self.fill(pc),
            Some(&e) => Ok(e),
            None => Err(MachineError::FetchFault { pc }),
        }
    }

    /// The `(tag, consumed, len, start)` of a table entry, chasing side
    /// indirections.
    #[inline(always)]
    pub(crate) fn resolve(&self, e: u32) -> (u64, u64, usize, usize) {
        unpack_entry(e, &self.side)
    }

    #[cold]
    fn fill(&mut self, pc: u64) -> Result<u32, MachineError> {
        let (mut entries, mut side, mut pool) = self.take_storage();
        let r = self.fill_detached(pc, &mut entries, &mut side, &mut pool);
        self.restore_storage(entries, side, pool);
        r
    }

    /// Detaches the entry table and word pool for a run loop's exclusive
    /// use. [`crate::run::run_predecoded`] keeps them in locals so the hot
    /// path reads them through loop-invariant pointers instead of reloading
    /// `self`'s fields every iteration; [`Self::restore_storage`] puts them
    /// back before the loop's counters are absorbed. While detached, the
    /// fetcher's own storage is empty (every lookup misses), so the two
    /// calls must bracket the loop tightly.
    pub(crate) fn take_storage(&mut self) -> (Vec<u32>, Vec<u64>, Vec<u32>) {
        (
            std::mem::take(&mut self.entries),
            std::mem::take(&mut self.side),
            std::mem::take(&mut self.pool),
        )
    }

    /// Reattaches storage detached by [`Self::take_storage`].
    pub(crate) fn restore_storage(&mut self, entries: Vec<u32>, side: Vec<u64>, pool: Vec<u32>) {
        self.entries = entries;
        self.side = side;
        self.pool = pool;
    }

    /// [`Self::fill`] against detached storage.
    ///
    /// # Errors
    ///
    /// [`MachineError::FetchFault`] if `pc` does not address a parseable
    /// item; the fault is not cached.
    #[cold]
    pub(crate) fn fill_detached(
        &mut self,
        pc: u64,
        entries: &mut [u32],
        side: &mut Vec<u64>,
        pool: &mut Vec<u32>,
    ) -> Result<u32, MachineError> {
        let mut r = NibbleReader::new(&self.image);
        r.seek(pc);
        let before = r.pos();
        let (tag, words) =
            match read_item_coded(self.encoding, self.isa, self.huffman.as_ref(), &mut r) {
                Some(Item::Insn(word)) => (TAG_INSN, vec![word]),
                Some(Item::Codeword(rank)) => {
                    let seq = self
                        .by_rank
                        .get(rank as usize)
                        .ok_or(MachineError::FetchFault { pc })?
                        .clone();
                    if seq.is_empty() {
                        return Err(MachineError::FetchFault { pc });
                    }
                    (TAG_CODEWORD, seq)
                }
                None => return Err(MachineError::FetchFault { pc }),
            };
        let consumed = r.pos() - before;
        if self.filled >= self.capacity {
            // Wholesale eviction, on the detached storage.
            entries.fill(0);
            side.clear();
            pool.clear();
            self.flush_runtime_state();
        }
        let start = pool.len();
        let entry = match pack_entry(tag, consumed, words.len(), start) {
            Some(e) => e,
            None => {
                // Overflows the packed form: park the wide record in the
                // side table and point at it.
                side.push(pack_wide(tag, consumed, words.len(), start));
                (TAG_SIDE as u32) << 30 | (side.len() - 1) as u32
            }
        };
        pool.extend_from_slice(&words);
        entries[pc as usize] = entry;
        self.filled += 1;
        Ok(entry)
    }

    /// Folds a run loop's batched counters into stats and telemetry, and
    /// adopts its final drain state so interleaved [`Fetch`] use stays
    /// coherent.
    pub(crate) fn absorb(
        &mut self,
        c: &RunCounters,
        expect_pc: u64,
        drain: (usize, usize, usize, u64, u64),
    ) {
        self.stats.insns += c.insns;
        self.stats.nibbles_fetched += c.nibbles;
        self.stats.codewords += c.codewords;
        self.stats.expanded_insns += c.expanded;
        self.stats.realigns += c.realigns;
        // Every delivered instruction is either an escaped one or an
        // expansion word, so the escape count needs no counter of its own.
        telemetry::VM_FETCH_ESCAPES.add(c.insns - c.expanded);
        telemetry::VM_FETCH_CODEWORDS.add(c.codewords);
        telemetry::VM_FETCH_BUFFERED_INSNS.add(c.expanded);
        telemetry::VM_FETCH_NIBBLES.add(c.nibbles);
        telemetry::VM_FETCH_REALIGNS.add(c.realigns);
        self.expect_pc = expect_pc;
        (self.drain_start, self.drain_len, self.drain_pos, self.buffer_pc, self.after_buffer) =
            drain;
    }

    fn deliver_pooled(&mut self) -> Fetched {
        let word = self.pool[self.drain_start + self.drain_pos];
        self.drain_pos += 1;
        self.stats.insns += 1;
        self.stats.expanded_insns += 1;
        telemetry::VM_FETCH_BUFFERED_INSNS.inc();
        let next_pc =
            if self.drain_pos < self.drain_len { self.buffer_pc } else { self.after_buffer };
        self.expect_pc = next_pc;
        Fetched { word, next_pc }
    }
}

impl Fetch for PredecodedFetcher {
    fn fetch(&mut self, pc: u64) -> Result<Fetched, MachineError> {
        if pc != self.expect_pc && !pc.is_multiple_of(8) {
            self.stats.realigns += 1;
            telemetry::VM_FETCH_REALIGNS.inc();
        }
        if pc == self.buffer_pc && self.drain_pos < self.drain_len {
            return Ok(self.deliver_pooled());
        }
        let e = self.lookup_or_fill(pc)?;
        let (tag, consumed, len, start) = self.resolve(e);
        self.stats.nibbles_fetched += consumed;
        telemetry::VM_FETCH_NIBBLES.add(consumed);
        if tag == TAG_INSN {
            self.stats.insns += 1;
            telemetry::VM_FETCH_ESCAPES.inc();
            self.buffer_pc = u64::MAX;
            self.expect_pc = pc + consumed;
            Ok(Fetched { word: self.pool[start], next_pc: pc + consumed })
        } else {
            self.stats.codewords += 1;
            telemetry::VM_FETCH_CODEWORDS.inc();
            self.drain_start = start;
            self.drain_len = len;
            self.drain_pos = 0;
            self.buffer_pc = pc;
            self.after_buffer = pc + consumed;
            Ok(self.deliver_pooled())
        }
    }

    fn granule(&self) -> u32 {
        self.encoding.granule_nibbles()
    }

    fn stats(&self) -> FetchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_core::{CompressionConfig, Compressor};
    use codense_obj::ObjectModule;
    use codense_ppc::encode;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    fn module() -> ObjectModule {
        let mut m = ObjectModule::new("t");
        for _ in 0..10 {
            m.code.push(encode(&Insn::Addi { rt: R3, ra: R3, si: 1 }));
            m.code.push(encode(&Insn::Addi { rt: R4, ra: R4, si: 2 }));
        }
        m.code.push(encode(&Insn::Sc));
        m
    }

    #[test]
    fn linear_fetch_walks_words() {
        let m = module();
        let mut f = LinearFetcher::new(m.code.clone());
        let f0 = f.fetch(0).unwrap();
        assert_eq!(f0.next_pc, 8);
        assert_eq!(f0.word, encode(&Insn::Addi { rt: R3, ra: R3, si: 1 }));
        assert!(f.fetch(4).is_err(), "misaligned fetch must fault");
        assert!(f.fetch(8 * 100).is_err());
        assert_eq!(f.stats().insns, 1);
    }

    #[test]
    fn compressed_fetch_delivers_same_stream() {
        let m = module();
        for config in [
            CompressionConfig::baseline(),
            CompressionConfig::small_dictionary(16),
            CompressionConfig::nibble_aligned(),
            CompressionConfig::huffman(),
        ] {
            let c = Compressor::new(config).compress(&m).unwrap();
            let mut f = CompressedFetcher::new(&c);
            let mut pc = 0;
            let mut got = Vec::new();
            for _ in 0..m.len() {
                let fetched = f.fetch(pc).unwrap();
                got.push(fetched.word);
                pc = fetched.next_pc;
            }
            assert_eq!(got, m.code);
        }
    }

    #[test]
    fn huffman_fetch_from_container_image() {
        let m = module();
        let c = Compressor::new(CompressionConfig::huffman()).compress(&m).unwrap();
        let image =
            codense_core::container::deserialize(&codense_core::container::serialize(&c)).unwrap();
        let mut f = CompressedFetcher::from_image(&image);
        let mut pc = 0;
        let mut got = Vec::new();
        for _ in 0..m.len() {
            let fetched = f.fetch(pc).unwrap();
            got.push(fetched.word);
            pc = fetched.next_pc;
        }
        assert_eq!(got, m.code);
    }

    #[test]
    fn huffman_fetch_with_hostile_lengths_faults_instead_of_panicking() {
        let m = module();
        let c = Compressor::new(CompressionConfig::huffman()).compress(&m).unwrap();
        let mut image =
            codense_core::container::deserialize(&codense_core::container::serialize(&c)).unwrap();
        // Kraft-violating table: more length-1 codes than nibble values.
        image.huffman_lengths = vec![1; 17];
        let mut f = CompressedFetcher::from_image(&image);
        assert!(f.fetch(0).is_err());
    }

    #[test]
    fn compressed_fetch_uses_less_bandwidth() {
        let m = module();
        let c = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
        let mut lf = LinearFetcher::new(m.code.clone());
        let mut cf = CompressedFetcher::new(&c);
        let (mut lp, mut cp) = (0u64, 0u64);
        for _ in 0..m.len() {
            lp = lf.fetch(lp).unwrap().next_pc;
            cp = cf.fetch(cp).unwrap().next_pc;
        }
        assert!(cf.stats().nibbles_fetched < lf.stats().nibbles_fetched);
        assert_eq!(cf.stats().insns, lf.stats().insns);
        assert!(cf.stats().codewords > 0);
    }

    #[test]
    fn fetch_fault_on_garbage_pc() {
        let m = module();
        let c = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap();
        let mut f = CompressedFetcher::new(&c);
        assert!(f.fetch(c.total_nibbles + 10).is_err());
    }
}
