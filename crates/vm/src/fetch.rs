//! Instruction fetch engines: the two paths of the paper's Fig 3.
//!
//! [`LinearFetcher`] is the ordinary processor front end: the PC advances 8
//! nibbles (one word) per instruction. [`CompressedFetcher`] is the modified
//! front end: it parses the packed compressed image nibble by nibble,
//! detects escape prefixes, and expands codewords through the on-chip
//! dictionary into an expansion buffer that feeds the core one instruction
//! at a time.
//!
//! Both engines deliver raw instruction *words* — decode belongs to the
//! target core ([`codense_isa::Core::step_word`]), which keeps the fetch
//! path ISA-independent.
//!
//! Both engines report [`FetchStats`], making the fetch-bandwidth effect of
//! compression measurable (the I-cache angle of [Chen97]).

use codense_core::encoding::{read_item_coded, Item};
use codense_core::nibbles::NibbleReader;
use codense_core::{telemetry, CompressedProgram, HuffCode};
use codense_isa::IsaRef;

use crate::machine::MachineError;

/// Counters maintained by a fetch engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Instructions delivered to the core.
    pub insns: u64,
    /// Nibbles consumed from program memory.
    pub nibbles_fetched: u64,
    /// Codewords expanded.
    pub codewords: u64,
    /// Instructions delivered out of dictionary expansions.
    pub expanded_insns: u64,
    /// Dictionary-cache hits (only counted when a dictionary cache is
    /// configured; see [`CompressedFetcher::with_dict_cache`]).
    pub dict_hits: u64,
    /// Dictionary-cache misses.
    pub dict_misses: u64,
    /// Bytes of dictionary entries loaded from data memory on misses.
    pub dict_bytes_loaded: u64,
    /// Nibble-PC realignments: control transfers into the packed stream at
    /// an address that is not word-aligned, forcing the fetch unit to
    /// realign mid-word (sequential flow streams and never realigns).
    pub realigns: u64,
}

impl FetchStats {
    /// Mean program-memory bits fetched per delivered instruction (32 for
    /// an uncompressed program; lower when codewords do their job).
    pub fn bits_per_insn(&self) -> f64 {
        if self.insns == 0 {
            return 0.0;
        }
        4.0 * self.nibbles_fetched as f64 / self.insns as f64
    }
}

/// One fetched instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fetched {
    /// The raw instruction word (the core decodes it).
    pub word: u32,
    /// Fetch-domain address of the following instruction (what sequential
    /// flow and `lk` should use).
    pub next_pc: u64,
}

/// An instruction-fetch engine with a nibble-granular PC.
pub trait Fetch {
    /// Fetches the instruction at `pc`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::FetchFault`] if `pc` does not address an
    /// instruction boundary in this engine's program.
    fn fetch(&mut self, pc: u64) -> Result<Fetched, MachineError>;

    /// Branch-offset unit in nibbles (8 uncompressed; the smallest-codeword
    /// size for compressed programs).
    fn granule(&self) -> u32;

    /// Fetch counters so far.
    fn stats(&self) -> FetchStats;
}

/// The conventional fetch path over an uncompressed text image.
#[derive(Debug, Clone)]
pub struct LinearFetcher {
    code: Vec<u32>,
    stats: FetchStats,
}

impl LinearFetcher {
    /// Creates a fetcher over instruction words (instruction `i` lives at
    /// nibble address `8 * i`).
    pub fn new(code: Vec<u32>) -> LinearFetcher {
        LinearFetcher { code, stats: FetchStats::default() }
    }
}

impl Fetch for LinearFetcher {
    fn fetch(&mut self, pc: u64) -> Result<Fetched, MachineError> {
        if !pc.is_multiple_of(8) {
            return Err(MachineError::FetchFault { pc });
        }
        let idx = (pc / 8) as usize;
        let word = *self.code.get(idx).ok_or(MachineError::FetchFault { pc })?;
        self.stats.insns += 1;
        self.stats.nibbles_fetched += 8;
        telemetry::VM_FETCH_LINEAR_INSNS.inc();
        telemetry::VM_FETCH_NIBBLES.add(8);
        Ok(Fetched { word, next_pc: pc + 8 })
    }

    fn granule(&self) -> u32 {
        8
    }

    fn stats(&self) -> FetchStats {
        self.stats
    }
}

/// The compressed-program fetch path: escape detection, dictionary
/// expansion buffer, nibble-granular PC.
///
/// Sequential flow inside an expanded codeword keeps the PC at the
/// codeword's address while the buffer drains; branches always target
/// codeword boundaries (guaranteed by the compressor), which flush the
/// buffer.
#[derive(Debug, Clone)]
pub struct CompressedFetcher {
    image: Vec<u8>,
    encoding: codense_core::EncodingKind,
    /// The ISA whose escape bytes introduce stream items.
    isa: IsaRef,
    /// Dictionary entries by codeword rank.
    by_rank: Vec<Vec<u32>>,
    /// Canonical Huffman decode table, rebuilt from codeword lengths
    /// ([`codense_core::EncodingKind::Huffman`] programs only). `None` for
    /// other encodings — or when a container carried unusable lengths, in
    /// which case every fetch faults instead of panicking.
    huffman: Option<HuffCode>,
    /// Remaining instructions of the codeword being drained.
    buffer: Vec<u32>,
    /// Position within the draining codeword.
    buffer_pos: usize,
    /// PC the buffer belongs to.
    buffer_pc: u64,
    /// Address of the atom following the buffered codeword.
    after_buffer: u64,
    /// Optional on-demand dictionary cache (the paper's §3.3 alternative to
    /// a fully on-chip dictionary): capacity in entries, plus the resident
    /// set in LRU order (most recent last). `None` = whole dictionary
    /// on-chip, no load traffic.
    dict_cache: Option<(usize, Vec<u32>)>,
    /// `next_pc` of the previous delivery, for realignment detection:
    /// a fetch anywhere else is a control transfer. `u64::MAX` before the
    /// first fetch (entry is conventionally aligned at 0).
    expect_pc: u64,
    stats: FetchStats,
}

impl CompressedFetcher {
    /// Builds the fetch engine from a compressed program (the image and the
    /// dictionary; atoms/addresses are not consulted — the engine parses
    /// the byte image exactly as hardware would). The program's ISA is used
    /// for escape detection.
    pub fn new(program: &CompressedProgram) -> CompressedFetcher {
        let mut by_rank = vec![Vec::new(); program.dictionary.len()];
        for rank in 0..program.dictionary.len() as u32 {
            let entry = program.dictionary.entry_of_rank(rank);
            by_rank[rank as usize] = program.dictionary.entry(entry).words.clone();
        }
        CompressedFetcher {
            image: program.image.clone(),
            encoding: program.encoding,
            isa: program.isa,
            by_rank,
            huffman: program.huffman.clone(),
            buffer: Vec::new(),
            buffer_pos: 0,
            buffer_pc: u64::MAX,
            after_buffer: 0,
            dict_cache: None,
            expect_pc: u64::MAX,
            stats: FetchStats::default(),
        }
    }

    /// Builds the fetch engine from a deserialized container image (see
    /// `codense_core::container`): what a real decoder boots from. The
    /// container format does not record an ISA; this assumes PowerPC (see
    /// [`from_image_with`](Self::from_image_with)).
    pub fn from_image(image: &codense_core::container::ProgramImage) -> CompressedFetcher {
        CompressedFetcher::from_image_with(image, IsaRef(&codense_ppc::ISA))
    }

    /// Like [`from_image`](Self::from_image), for an explicit target ISA.
    pub fn from_image_with(
        image: &codense_core::container::ProgramImage,
        isa: IsaRef,
    ) -> CompressedFetcher {
        CompressedFetcher {
            image: image.image.clone(),
            encoding: image.encoding,
            isa,
            by_rank: image.dictionary_by_rank.clone(),
            // Hostile or absent lengths yield `None`; Huffman fetches then
            // fault rather than panic.
            huffman: HuffCode::from_nibble_lengths(image.huffman_lengths.clone()),
            buffer: Vec::new(),
            buffer_pos: 0,
            buffer_pc: u64::MAX,
            after_buffer: 0,
            dict_cache: None,
            expect_pc: u64::MAX,
            stats: FetchStats::default(),
        }
    }

    /// Configures an on-demand dictionary cache of `entries` slots (LRU).
    ///
    /// Models the paper's §3.3 alternative: "if the dictionary is larger,
    /// it might be kept as a data segment of the compressed program and
    /// each dictionary entry could be loaded as needed". Expansions of
    /// uncached entries count [`FetchStats::dict_misses`] and charge the
    /// entry's bytes to [`FetchStats::dict_bytes_loaded`].
    pub fn with_dict_cache(mut self, entries: usize) -> CompressedFetcher {
        self.dict_cache = Some((entries.max(1), Vec::new()));
        self
    }

    /// Runs the dictionary-cache bookkeeping for an expansion of `rank`.
    fn touch_dict(&mut self, rank: u32) {
        let Some((capacity, resident)) = &mut self.dict_cache else { return };
        if let Some(pos) = resident.iter().position(|&r| r == rank) {
            resident.remove(pos);
            resident.push(rank);
            self.stats.dict_hits += 1;
        } else {
            self.stats.dict_misses += 1;
            self.stats.dict_bytes_loaded += 4 * self.by_rank[rank as usize].len() as u64;
            if resident.len() == *capacity {
                resident.remove(0);
            }
            resident.push(rank);
        }
    }

    fn deliver_buffered(&mut self) -> Fetched {
        let word = self.buffer[self.buffer_pos];
        self.buffer_pos += 1;
        self.stats.insns += 1;
        self.stats.expanded_insns += 1;
        telemetry::VM_FETCH_BUFFERED_INSNS.inc();
        let next_pc =
            if self.buffer_pos < self.buffer.len() { self.buffer_pc } else { self.after_buffer };
        self.expect_pc = next_pc;
        Fetched { word, next_pc }
    }
}

impl Fetch for CompressedFetcher {
    fn fetch(&mut self, pc: u64) -> Result<Fetched, MachineError> {
        // A fetch anywhere but the previous delivery's `next_pc` is a
        // control transfer; when it lands mid-word the fetch unit must
        // realign its nibble pointer (the cost model charges this).
        if pc != self.expect_pc && !pc.is_multiple_of(8) {
            self.stats.realigns += 1;
            telemetry::VM_FETCH_REALIGNS.inc();
        }
        // Drain the expansion buffer while sequential flow stays on it.
        if pc == self.buffer_pc && self.buffer_pos < self.buffer.len() {
            return Ok(self.deliver_buffered());
        }
        let mut r = NibbleReader::new(&self.image);
        r.seek(pc);
        let before = r.pos();
        match read_item_coded(self.encoding, self.isa, self.huffman.as_ref(), &mut r) {
            Some(Item::Insn(word)) => {
                self.stats.insns += 1;
                self.stats.nibbles_fetched += r.pos() - before;
                // Under every encoding an uncompressed instruction in the
                // stream is introduced by an escape prefix.
                telemetry::VM_FETCH_ESCAPES.inc();
                telemetry::VM_FETCH_NIBBLES.add(r.pos() - before);
                // Leaving any previous codeword behind.
                self.buffer_pc = u64::MAX;
                self.expect_pc = r.pos();
                Ok(Fetched { word, next_pc: r.pos() })
            }
            Some(Item::Codeword(rank)) => {
                let seq =
                    self.by_rank.get(rank as usize).ok_or(MachineError::FetchFault { pc })?.clone();
                if seq.is_empty() {
                    return Err(MachineError::FetchFault { pc });
                }
                self.stats.codewords += 1;
                self.stats.nibbles_fetched += r.pos() - before;
                telemetry::VM_FETCH_CODEWORDS.inc();
                telemetry::VM_FETCH_NIBBLES.add(r.pos() - before);
                let after = r.pos();
                self.touch_dict(rank);
                self.buffer = seq;
                self.buffer_pos = 0;
                self.buffer_pc = pc;
                self.after_buffer = after;
                Ok(self.deliver_buffered())
            }
            None => Err(MachineError::FetchFault { pc }),
        }
    }

    fn granule(&self) -> u32 {
        self.encoding.granule_nibbles()
    }

    fn stats(&self) -> FetchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_core::{CompressionConfig, Compressor};
    use codense_obj::ObjectModule;
    use codense_ppc::encode;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    fn module() -> ObjectModule {
        let mut m = ObjectModule::new("t");
        for _ in 0..10 {
            m.code.push(encode(&Insn::Addi { rt: R3, ra: R3, si: 1 }));
            m.code.push(encode(&Insn::Addi { rt: R4, ra: R4, si: 2 }));
        }
        m.code.push(encode(&Insn::Sc));
        m
    }

    #[test]
    fn linear_fetch_walks_words() {
        let m = module();
        let mut f = LinearFetcher::new(m.code.clone());
        let f0 = f.fetch(0).unwrap();
        assert_eq!(f0.next_pc, 8);
        assert_eq!(f0.word, encode(&Insn::Addi { rt: R3, ra: R3, si: 1 }));
        assert!(f.fetch(4).is_err(), "misaligned fetch must fault");
        assert!(f.fetch(8 * 100).is_err());
        assert_eq!(f.stats().insns, 1);
    }

    #[test]
    fn compressed_fetch_delivers_same_stream() {
        let m = module();
        for config in [
            CompressionConfig::baseline(),
            CompressionConfig::small_dictionary(16),
            CompressionConfig::nibble_aligned(),
            CompressionConfig::huffman(),
        ] {
            let c = Compressor::new(config).compress(&m).unwrap();
            let mut f = CompressedFetcher::new(&c);
            let mut pc = 0;
            let mut got = Vec::new();
            for _ in 0..m.len() {
                let fetched = f.fetch(pc).unwrap();
                got.push(fetched.word);
                pc = fetched.next_pc;
            }
            assert_eq!(got, m.code);
        }
    }

    #[test]
    fn huffman_fetch_from_container_image() {
        let m = module();
        let c = Compressor::new(CompressionConfig::huffman()).compress(&m).unwrap();
        let image =
            codense_core::container::deserialize(&codense_core::container::serialize(&c)).unwrap();
        let mut f = CompressedFetcher::from_image(&image);
        let mut pc = 0;
        let mut got = Vec::new();
        for _ in 0..m.len() {
            let fetched = f.fetch(pc).unwrap();
            got.push(fetched.word);
            pc = fetched.next_pc;
        }
        assert_eq!(got, m.code);
    }

    #[test]
    fn huffman_fetch_with_hostile_lengths_faults_instead_of_panicking() {
        let m = module();
        let c = Compressor::new(CompressionConfig::huffman()).compress(&m).unwrap();
        let mut image =
            codense_core::container::deserialize(&codense_core::container::serialize(&c)).unwrap();
        // Kraft-violating table: more length-1 codes than nibble values.
        image.huffman_lengths = vec![1; 17];
        let mut f = CompressedFetcher::from_image(&image);
        assert!(f.fetch(0).is_err());
    }

    #[test]
    fn compressed_fetch_uses_less_bandwidth() {
        let m = module();
        let c = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
        let mut lf = LinearFetcher::new(m.code.clone());
        let mut cf = CompressedFetcher::new(&c);
        let (mut lp, mut cp) = (0u64, 0u64);
        for _ in 0..m.len() {
            lp = lf.fetch(lp).unwrap().next_pc;
            cp = cf.fetch(cp).unwrap().next_pc;
        }
        assert!(cf.stats().nibbles_fetched < lf.stats().nibbles_fetched);
        assert_eq!(cf.stats().insns, lf.stats().insns);
        assert!(cf.stats().codewords > 0);
    }

    #[test]
    fn fetch_fault_on_garbage_pc() {
        let m = module();
        let c = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap();
        let mut f = CompressedFetcher::new(&c);
        assert!(f.fetch(c.total_nibbles + 10).is_err());
    }
}
