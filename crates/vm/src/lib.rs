#![warn(missing_docs)]

//! A PowerPC-subset interpreter with a compressed-program fetch path — the
//! "compressed program processor" of the reproduced paper's Fig 3.
//!
//! The [`machine::Machine`] executes decoded instructions against
//! architectural state; instruction supply is abstracted behind
//! [`fetch::Fetch`], with two implementations:
//!
//! * [`fetch::LinearFetcher`] — the ordinary front end over raw words;
//! * [`fetch::CompressedFetcher`] — the modified front end: it parses the
//!   packed compressed image, routes uncompressed instructions straight to
//!   decode, and expands codewords through the on-chip dictionary.
//!
//! Because the machine's PC domain is nibble addresses in both cases, the
//! *same* execution loop ([`run::run`]) runs both program forms; the
//! [`kernels`] module supplies real programs to prove equivalence
//! end-to-end.
//!
//! # Example
//!
//! ```
//! use codense_core::{Compressor, CompressionConfig};
//! use codense_vm::{fetch::CompressedFetcher, kernels, machine::Machine, run::run};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = kernels::fib();
//! let compressed = Compressor::new(CompressionConfig::baseline()).compress(&kernel.module)?;
//! let mut machine = Machine::new(1 << 20);
//! kernel.apply_init(&mut machine);
//! let mut fetch = CompressedFetcher::new(&compressed);
//! let result = run(&mut machine, &mut fetch, 0, 1_000_000)?;
//! assert_eq!(result.exit_code, 6765);
//! # Ok(())
//! # }
//! ```

pub mod fetch;
pub mod kernels;
pub mod machine;
pub mod run;

pub use fetch::{CompressedFetcher, Fetch, FetchStats, LinearFetcher, PredecodedFetcher};
pub use machine::{Core, Machine, MachineError, Outcome};
pub use run::{run, run_predecoded, run_traced, RunResult};
