//! The PowerPC-subset interpreter core.
//!
//! The implementation lives in [`codense_ppc::machine`] (each ISA backend
//! owns its interpreter and exposes it through [`codense_isa::Core`]); this
//! module re-exports it so existing `codense_vm::machine::Machine` paths
//! keep working.

pub use codense_isa::{Core, MachineError, Outcome};
pub use codense_ppc::machine::Machine;
