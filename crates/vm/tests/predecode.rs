//! Decode-cache equivalence suite.
//!
//! [`run_predecoded`] over the [`PredecodedFetcher`] must be observably
//! identical to the re-parsing [`CompressedFetcher`] under [`run`]: same
//! exit, same step count, byte-exact [`FetchStats`], and an identical final
//! machine — registers *and* memory, with no masking, because both engines
//! execute in the same (compressed) fetch domain. The suite pins this on
//! randomized fuzz programs under all four encodings on both ISAs, then
//! hammers the cache-management edges: capacity thrash (wholesale flush),
//! explicit invalidation between and mid-use, warm-cache reuse across the
//! `Fetch`-trait and threaded-dispatch entry points, and fault caching.

use codense_codegen::Rng;
use codense_core::{verify::verify, CompressedProgram, CompressionConfig, Compressor};
use codense_fuzz::gen::{generate_spec, GenConfig};
use codense_fuzz::mips::generate_mips;
use codense_fuzz::spec::{build, MEM_BYTES};
use codense_isa::IsaRef;
use codense_vm::fetch::{CompressedFetcher, Fetch, FetchStats, PredecodedFetcher};
use codense_vm::machine::MachineError;
use codense_vm::{run, run_predecoded, Machine, RunResult};

const MAX_STEPS: u64 = 2_000_000;

fn configs() -> [(&'static str, CompressionConfig); 4] {
    [
        ("baseline", CompressionConfig::baseline()),
        ("one-byte", CompressionConfig::small_dictionary(32)),
        ("nibble", CompressionConfig::nibble_aligned()),
        ("huffman", CompressionConfig::huffman()),
    ]
}

/// Seeds the jump-table region with the *image's* (compressed-domain)
/// entries. Both engines run the same image, so both machines get the same
/// values — unlike the native/compressed oracle, nothing differs by design.
fn seed_tables(mem: &mut [u8], table_addrs: &[u32], compressed: &CompressedProgram) {
    for (t, table) in compressed.jump_tables.iter().enumerate() {
        for (e, &target) in table.iter().enumerate() {
            let a = (table_addrs[t] + 4 * e as u32) as usize;
            mem[a..a + 4].copy_from_slice(&(target as u32).to_be_bytes());
        }
    }
}

fn entry_of(compressed: &CompressedProgram) -> u64 {
    compressed.address_of_orig(0).unwrap_or(0)
}

/// Reference: the re-parsing engine under the generic per-step loop.
fn ppc_reference(
    compressed: &CompressedProgram,
    table_addrs: &[u32],
) -> (Result<RunResult, MachineError>, Machine) {
    let mut m = Machine::new(MEM_BYTES);
    seed_tables(&mut m.mem, table_addrs, compressed);
    let mut fetch = CompressedFetcher::new(compressed);
    let r = run(&mut m, &mut fetch, entry_of(compressed), MAX_STEPS);
    (r, m)
}

/// One predecoded run on a caller-managed fetcher (so tests can reuse,
/// bound, or invalidate the cache between runs).
fn ppc_predecoded(
    compressed: &CompressedProgram,
    table_addrs: &[u32],
    fetch: &mut PredecodedFetcher,
) -> (Result<RunResult, MachineError>, Machine) {
    let mut m = Machine::new(MEM_BYTES);
    seed_tables(&mut m.mem, table_addrs, compressed);
    let r = run_predecoded(&mut m, fetch, entry_of(compressed), MAX_STEPS);
    (r, m)
}

/// Full-state equality between the two engines' runs: result (including
/// the error case — both must fault identically or halt identically) and
/// every architected machine field, unmasked.
fn assert_ppc_equal(
    tag: &str,
    reference: &(Result<RunResult, MachineError>, Machine),
    got: &(Result<RunResult, MachineError>, Machine),
) {
    assert_eq!(got.0, reference.0, "{tag}: run result");
    assert_ppc_machines_equal(tag, &reference.1, &got.1);
}

/// Like [`assert_ppc_equal`] for a run on a *reused* fetcher, whose
/// `RunResult.stats` snapshot is cumulative across runs: the outcome and
/// machine must match, stats are the caller's to check via
/// [`PredecodedFetcher::stats`].
fn assert_ppc_rerun_equal(
    tag: &str,
    reference: &(Result<RunResult, MachineError>, Machine),
    got: &(Result<RunResult, MachineError>, Machine),
) {
    match (&reference.0, &got.0) {
        (Ok(r), Ok(g)) => {
            assert_eq!(g.exit_code, r.exit_code, "{tag}: exit");
            assert_eq!(g.steps, r.steps, "{tag}: steps");
        }
        (r, g) => assert_eq!(g, r, "{tag}: run result"),
    }
    assert_ppc_machines_equal(tag, &reference.1, &got.1);
}

fn assert_ppc_machines_equal(tag: &str, rm: &Machine, gm: &Machine) {
    assert_eq!(gm.gpr, rm.gpr, "{tag}: gpr");
    assert_eq!(gm.lr, rm.lr, "{tag}: lr");
    assert_eq!(gm.ctr, rm.ctr, "{tag}: ctr");
    assert_eq!(gm.cr, rm.cr, "{tag}: cr");
    assert_eq!(gm.ca, rm.ca, "{tag}: ca");
    assert_eq!(gm.mem, rm.mem, "{tag}: memory");
}

fn scaled(stats: FetchStats, n: u64) -> FetchStats {
    FetchStats {
        insns: stats.insns * n,
        nibbles_fetched: stats.nibbles_fetched * n,
        codewords: stats.codewords * n,
        expanded_insns: stats.expanded_insns * n,
        dict_hits: 0,
        dict_misses: 0,
        dict_bytes_loaded: 0,
        realigns: stats.realigns * n,
    }
}

/// Fuzz programs, all four encodings, PPC: the threaded-dispatch loop is
/// trace-equivalent to the re-parsing engine, final machines byte-equal.
#[test]
fn fuzz_ppc_predecoded_matches_reparse() {
    let mut tested = 0;
    for case in 0..6u64 {
        let mut rng = Rng::new(0x5EED_0000 + case);
        let spec = generate_spec(&mut rng, &GenConfig::default());
        let program = build(&spec).expect("build");
        for (label, config) in configs() {
            let tag = format!("case {case} {label}");
            let compressed = Compressor::new(config).compress(&program.module).expect(&tag);
            verify(&program.module, &compressed).expect(&tag);
            if !compressed.overflow_table.is_empty() {
                // Overflow trampolines load targets from data memory the
                // oracle-style harness does not materialize; skip, as the
                // differential oracle does.
                continue;
            }
            let reference = ppc_reference(&compressed, &program.table_addrs);
            let mut fetch = PredecodedFetcher::new(&compressed);
            let got = ppc_predecoded(&compressed, &program.table_addrs, &mut fetch);
            assert_ppc_equal(&tag, &reference, &got);
            tested += 1;
        }
    }
    assert!(tested >= 12, "only {tested} (case, encoding) pairs ran");
}

/// Fuzz programs, all four encodings, MIPS: same contract on the second
/// backend (distinct decoded-insn type through [`run_predecoded`]'s
/// monomorphization).
#[test]
fn fuzz_mips_predecoded_matches_reparse() {
    let mips = IsaRef(&codense_mips::ISA);
    let mut tested = 0;
    for case in 0..6u64 {
        let mut rng = Rng::new(0x3B1A_0000 + case);
        let program = match generate_mips(&mut rng, &GenConfig::default()) {
            Ok(p) => p,
            Err(e) => panic!("case {case}: generate failed: {e}"),
        };
        for (label, config) in configs() {
            let tag = format!("case {case} {label}");
            let compressed =
                Compressor::new(config).with_isa(mips).compress(&program.module).expect(&tag);
            verify(&program.module, &compressed).expect(&tag);
            if !compressed.overflow_table.is_empty() {
                continue;
            }
            let entry = entry_of(&compressed);

            let mut rm = codense_mips::Machine::new(MEM_BYTES);
            seed_tables(&mut rm.mem, &program.table_addrs, &compressed);
            let mut ref_fetch = CompressedFetcher::new(&compressed);
            let reference = run(&mut rm, &mut ref_fetch, entry, MAX_STEPS);

            let mut gm = codense_mips::Machine::new(MEM_BYTES);
            seed_tables(&mut gm.mem, &program.table_addrs, &compressed);
            let mut fetch = PredecodedFetcher::new(&compressed);
            let got = run_predecoded(&mut gm, &mut fetch, entry, MAX_STEPS);

            assert_eq!(got, reference, "{tag}: run result");
            assert_eq!(gm.gpr, rm.gpr, "{tag}: gpr");
            assert_eq!(gm.mem, rm.mem, "{tag}: memory");
            tested += 1;
        }
    }
    assert!(tested >= 12, "only {tested} (case, encoding) pairs ran");
}

/// A cache bounded far below the program's working set thrashes through
/// wholesale flushes (entries, side table, and pool all die together) yet
/// stays trace-equivalent, and never holds more than its capacity.
#[test]
fn capacity_thrash_stays_equivalent() {
    let mut rng = Rng::new(0xCAFE_0001);
    let spec = generate_spec(&mut rng, &GenConfig::default());
    let program = build(&spec).expect("build");
    for (label, config) in
        [("nibble", CompressionConfig::nibble_aligned()), ("huffman", CompressionConfig::huffman())]
    {
        let compressed = Compressor::new(config).compress(&program.module).expect(label);
        if !compressed.overflow_table.is_empty() {
            continue;
        }
        let reference = ppc_reference(&compressed, &program.table_addrs);
        for capacity in [1usize, 2, 7] {
            let tag = format!("{label} capacity {capacity}");
            let mut fetch = PredecodedFetcher::new(&compressed).with_capacity(capacity);
            let got = ppc_predecoded(&compressed, &program.table_addrs, &mut fetch);
            assert_ppc_equal(&tag, &reference, &got);
            assert!(fetch.cached_items() <= capacity, "{tag}: {} resident", fetch.cached_items());
        }
    }
}

/// Invalidation drops the cache but not the counters: a second run after
/// [`PredecodedFetcher::invalidate`] re-parses from scratch, produces the
/// identical machine, and stats accumulate to exactly two runs' worth.
#[test]
fn invalidate_between_runs_refills_and_keeps_stats() {
    let mut rng = Rng::new(0xCAFE_0002);
    let spec = generate_spec(&mut rng, &GenConfig::default());
    let program = build(&spec).expect("build");
    let compressed =
        Compressor::new(CompressionConfig::nibble_aligned()).compress(&program.module).unwrap();
    assert!(compressed.overflow_table.is_empty(), "pick another seed");
    let reference = ppc_reference(&compressed, &program.table_addrs);
    let ref_stats = reference.0.as_ref().expect("reference halts").stats;

    let mut fetch = PredecodedFetcher::new(&compressed);
    let first = ppc_predecoded(&compressed, &program.table_addrs, &mut fetch);
    assert_ppc_equal("first run", &reference, &first);
    let resident = fetch.cached_items();
    assert!(resident > 0);

    fetch.invalidate();
    assert_eq!(fetch.cached_items(), 0, "invalidate empties the cache");
    assert_eq!(fetch.stats(), ref_stats, "invalidate leaves stats alone");

    let second = ppc_predecoded(&compressed, &program.table_addrs, &mut fetch);
    assert_ppc_rerun_equal("post-invalidate run", &reference, &second);
    assert_eq!(fetch.cached_items(), resident, "same working set refills");
    assert_eq!(fetch.stats(), scaled(ref_stats, 2), "two runs' worth of counters");
}

/// Invalidating mid-use — after the `Fetch` impl has already walked part of
/// the stream (as image repatching would) — leaves a coherent engine: the
/// next full run matches the reference machine exactly.
#[test]
fn invalidate_mid_use_stays_coherent() {
    let mut rng = Rng::new(0xCAFE_0003);
    let spec = generate_spec(&mut rng, &GenConfig::default());
    let program = build(&spec).expect("build");
    let compressed =
        Compressor::new(CompressionConfig::nibble_aligned()).compress(&program.module).unwrap();
    assert!(compressed.overflow_table.is_empty(), "pick another seed");
    let reference = ppc_reference(&compressed, &program.table_addrs);

    let mut fetch = PredecodedFetcher::new(&compressed);
    // Walk a few items through the Fetch impl (possibly entering an
    // expansion buffer), then yank the cache out from under it.
    let mut pc = entry_of(&compressed);
    for _ in 0..5 {
        match fetch.fetch(pc) {
            Ok(f) => pc = f.next_pc,
            Err(_) => break,
        }
    }
    fetch.invalidate();

    let before = fetch.stats();
    let got = ppc_predecoded(&compressed, &program.table_addrs, &mut fetch);
    assert_ppc_rerun_equal("post-mid-use-invalidate", &reference, &got);
    let after = fetch.stats();
    let run_stats = reference.0.as_ref().expect("reference halts").stats;
    assert_eq!(after.insns - before.insns, run_stats.insns, "run delta");
    assert_eq!(
        after.nibbles_fetched - before.nibbles_fetched,
        run_stats.nibbles_fetched,
        "nibble delta"
    );
}

/// The engine's two entry points interoperate on one warm cache: a full run
/// through the `Fetch` impl (itself byte-exact with the re-parsing engine),
/// then a threaded-dispatch run over the entries the first run cached —
/// exercising the decoded-mirror catch-up path for pre-existing entries.
#[test]
fn fetch_impl_then_predecoded_share_one_cache() {
    let mut rng = Rng::new(0xCAFE_0004);
    let spec = generate_spec(&mut rng, &GenConfig::default());
    let program = build(&spec).expect("build");
    let compressed =
        Compressor::new(CompressionConfig::nibble_aligned()).compress(&program.module).unwrap();
    assert!(compressed.overflow_table.is_empty(), "pick another seed");
    let reference = ppc_reference(&compressed, &program.table_addrs);
    let ref_stats = reference.0.as_ref().expect("reference halts").stats;

    let mut fetch = PredecodedFetcher::new(&compressed);

    // Generic loop over the Fetch impl: the cached engine is a drop-in
    // Fetch, byte-exact with CompressedFetcher.
    let mut m1 = Machine::new(MEM_BYTES);
    seed_tables(&mut m1.mem, &program.table_addrs, &compressed);
    let r1 = run(&mut m1, &mut fetch, entry_of(&compressed), MAX_STEPS);
    assert_ppc_equal("fetch-impl run", &reference, &(r1, m1));
    let warm = fetch.cached_items();
    assert!(warm > 0);

    // Threaded-dispatch run on the same, warm fetcher: every entry is a
    // cache hit predating the run, so the decoded mirror must catch up
    // from the pool rather than from fills.
    let got = ppc_predecoded(&compressed, &program.table_addrs, &mut fetch);
    assert_ppc_rerun_equal("warm predecoded run", &reference, &got);
    assert_eq!(fetch.cached_items(), warm, "no refill on a warm cache");
    assert_eq!(fetch.stats(), scaled(ref_stats, 2), "two runs' worth of counters");
}

/// Unparseable offsets fault without being cached: the same bad branch
/// target faults on every attempt (no stale entry can mask it), exactly as
/// the re-parsing engine behaves.
#[test]
fn faults_are_not_cached() {
    let mut rng = Rng::new(0xCAFE_0005);
    let spec = generate_spec(&mut rng, &GenConfig::default());
    let program = build(&spec).expect("build");
    let compressed =
        Compressor::new(CompressionConfig::nibble_aligned()).compress(&program.module).unwrap();
    let mut fetch = PredecodedFetcher::new(&compressed);
    let bad = compressed.image.len() as u64 * 2 + 5; // past the stream
    for attempt in 0..2 {
        match fetch.fetch(bad) {
            Err(MachineError::FetchFault { pc }) => assert_eq!(pc, bad, "attempt {attempt}"),
            other => panic!("attempt {attempt}: expected FetchFault, got {other:?}"),
        }
    }
    assert_eq!(fetch.cached_items(), 0, "faults must not fill the cache");
}
