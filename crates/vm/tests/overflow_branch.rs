//! Executes a program whose conditional branch overflows its reduced-
//! resolution offset field, forcing the compressor's overflow-jump-table
//! rewrite (§3.2.2) — then runs it with the table installed in data memory,
//! proving the rewritten dispatch sequence works end to end.

use codense_core::compressor::{Atom, OVERFLOW_TABLE_HI};
use codense_core::{verify::verify, CompressionConfig, Compressor};
use codense_obj::ObjectModule;
use codense_ppc::asm::Assembler;
use codense_ppc::insn::Insn;
use codense_ppc::reg::*;
use codense_vm::{fetch::CompressedFetcher, machine::Machine, run::run, LinearFetcher};

/// A program where `beq` must skip ~1200 unique instructions: under the
/// nibble scheme that is > 8192 nibbles, beyond the 14-bit field at 4-bit
/// granularity.
fn overflowing_module() -> ObjectModule {
    let mut a = Assembler::new();
    a.emit(Insn::Cmpwi { bf: CR0, ra: R4, si: 0 });
    a.beq(CR0, "far"); // taken when r4 == 0
                       // Filler: unique instructions (incompressible) so the span stays wide.
    for i in 0..1200i32 {
        let rt = Gpr::new(3 + (i % 4) as u8).unwrap();
        a.emit(Insn::Addi { rt, ra: rt, si: (i % 3000) as i16 + 1 });
    }
    a.emit(Insn::Addi { rt: R3, ra: R0, si: 111 }); // fallthrough result
    a.emit(Insn::Sc);
    a.label("far");
    a.emit(Insn::Addi { rt: R3, ra: R0, si: 222 }); // taken result
    a.emit(Insn::Sc);
    let mut m = ObjectModule::new("overflow");
    m.code = a.finish().unwrap();
    m.validate().unwrap();
    m
}

#[test]
fn overflow_rewrite_happens_and_verifies() {
    let m = overflowing_module();
    let c = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap();
    let rewritten = c.atoms.iter().filter(|a| matches!(a, Atom::ViaTable { .. })).count();
    assert!(rewritten >= 1, "expected at least one overflow rewrite");
    assert_eq!(c.overflow_table.len(), rewritten);
    verify(&m, &c).unwrap();
}

#[test]
fn overflow_dispatch_executes_correctly() {
    let m = overflowing_module();
    let c = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap();
    assert!(!c.overflow_table.is_empty());

    for (r4, _expected_tag) in [(0u32, "taken"), (1u32, "fallthrough")] {
        // Reference run (uncompressed).
        let mut ref_machine = Machine::new(0x70_0000);
        ref_machine.gpr[4] = r4;
        let mut ref_fetch = LinearFetcher::new(m.code.clone());
        let reference = run(&mut ref_machine, &mut ref_fetch, 0, 100_000).unwrap();

        // Compressed run: install the overflow table at its architected
        // .data address before starting.
        let mut machine = Machine::new(0x70_0000);
        machine.gpr[4] = r4;
        let table_base = (OVERFLOW_TABLE_HI as u32) << 16;
        for (slot, &addr) in c.overflow_table.iter().enumerate() {
            machine.store32(table_base + 4 * slot as u32, addr as u32).unwrap();
        }
        let mut fetch = CompressedFetcher::new(&c);
        let result = run(&mut machine, &mut fetch, 0, 100_000).unwrap();

        assert_eq!(result.exit_code, reference.exit_code, "r4 = {r4}");
        assert_eq!(reference.exit_code, if r4 == 0 { 222 } else { 111 });
    }
}

#[test]
fn ctr_decrementing_overflow_is_rejected() {
    // A bdnz spanning too far cannot be rewritten (the dispatch clobbers
    // CTR); the compressor must refuse rather than miscompile.
    let mut a = Assembler::new();
    a.label("top");
    for i in 0..1200i32 {
        let rt = Gpr::new(3 + (i % 4) as u8).unwrap();
        a.emit(Insn::Addi { rt, ra: rt, si: (i % 3000) as i16 + 2 });
    }
    a.bdnz("top");
    a.emit(Insn::Sc);
    let mut m = ObjectModule::new("bdnz-overflow");
    m.code = a.finish().unwrap();
    let err = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap_err();
    assert!(matches!(err, codense_core::CompressError::UnsupportedOverflowBranch { .. }));
}
