//! End-to-end equivalence: every kernel, compressed under every encoding,
//! must execute to the same result and the same final memory/register state
//! as its uncompressed original.

use codense_core::{verify::verify, CompressionConfig, Compressor};
use codense_vm::{fetch::CompressedFetcher, kernels, machine::Machine, run::run, LinearFetcher};

fn configs() -> Vec<(&'static str, CompressionConfig)> {
    vec![
        ("baseline", CompressionConfig::baseline()),
        ("one-byte", CompressionConfig::small_dictionary(32)),
        ("nibble", CompressionConfig::nibble_aligned()),
    ]
}

#[test]
fn compressed_kernels_match_uncompressed() {
    for kernel in kernels::all() {
        // Reference run.
        let mut ref_machine = Machine::new(1 << 20);
        kernel.apply_init(&mut ref_machine);
        let mut ref_fetch = LinearFetcher::new(kernel.module.code.clone());
        let reference = run(&mut ref_machine, &mut ref_fetch, 0, 1_000_000)
            .unwrap_or_else(|e| panic!("{} uncompressed: {e}", kernel.name));
        assert_eq!(reference.exit_code, kernel.expected, "{}", kernel.name);

        for (tag, config) in configs() {
            let compressed = Compressor::new(config)
                .compress(&kernel.module)
                .unwrap_or_else(|e| panic!("{} {tag}: {e}", kernel.name));
            verify(&kernel.module, &compressed)
                .unwrap_or_else(|e| panic!("{} {tag}: {e}", kernel.name));

            let mut machine = Machine::new(1 << 20);
            kernel.apply_init(&mut machine);
            let mut fetch = CompressedFetcher::new(&compressed);
            let result = run(&mut machine, &mut fetch, 0, 1_000_000)
                .unwrap_or_else(|e| panic!("{} {tag}: {e}", kernel.name));

            assert_eq!(result.exit_code, reference.exit_code, "{} {tag}", kernel.name);
            assert_eq!(result.steps, reference.steps, "{} {tag}: same dynamic path", kernel.name);
            // r0 and LR may hold code addresses, which legitimately differ
            // between the compressed and uncompressed PC domains; everything
            // else must match.
            assert_eq!(machine.gpr[2..], ref_machine.gpr[2..], "{} {tag}", kernel.name);
            assert_eq!(machine.cr, ref_machine.cr, "{} {tag}", kernel.name);
            // Data memory must match outside the stack region (stale spilled
            // return addresses below the restored SP differ by domain).
            let data_top = 0xE0000;
            assert_eq!(
                machine.mem[..data_top],
                ref_machine.mem[..data_top],
                "{} {tag}",
                kernel.name
            );
        }
    }
}

/// Stronger form of [`compressed_kernels_match_uncompressed`]: instead of
/// comparing final states, run every kernel through the differential oracle,
/// which checks the *whole trace* — per-step PC correspondence against the
/// atom map, fetched instructions, every unmasked register, CR, CA, and the
/// control-flow outcome — under all three encodings.
#[test]
fn kernels_lockstep_full_trace_under_all_encodings() {
    use codense_fuzz::oracle::{lockstep, LockstepOk, TraceMask};

    // r0 legitimately differs: call-heavy kernels stage LR (a fetch-domain
    // address) through it. The stack region likewise holds spilled return
    // addresses, which are domain-specific.
    let mask =
        TraceMask { skip_gprs: 1 << 0, mem_skip: std::iter::once(0xE0000..1 << 20).collect() };

    for kernel in kernels::all() {
        assert!(
            kernel.module.jump_tables.is_empty(),
            "{}: kernels are table-free; extend table_addrs handling if this changes",
            kernel.name
        );
        // Reference step count, for the cross-encoding agreement check.
        let mut ref_machine = Machine::new(1 << 20);
        kernel.apply_init(&mut ref_machine);
        let mut ref_fetch = LinearFetcher::new(kernel.module.code.clone());
        let reference = run(&mut ref_machine, &mut ref_fetch, 0, 1_000_000).unwrap();

        for (tag, config) in configs() {
            let compressed = Compressor::new(config)
                .compress(&kernel.module)
                .unwrap_or_else(|e| panic!("{} {tag}: {e}", kernel.name));
            let got = lockstep(
                &kernel.module,
                &compressed,
                &[],
                &|machine| kernel.apply_init(machine),
                &mask,
                1 << 20,
                1_000_000,
            )
            .unwrap_or_else(|d| panic!("{} {tag}: trace divergence: {d}", kernel.name));
            assert_eq!(
                got,
                LockstepOk::Completed { steps: reference.steps, exit: kernel.expected },
                "{} {tag}",
                kernel.name
            );
        }
    }
}

#[test]
fn compressed_fetch_bandwidth_not_worse() {
    // Dictionary expansion means fewer program-memory bits per delivered
    // instruction on compressible kernels.
    let kernel = kernels::bubble_sort();
    let compressed =
        Compressor::new(CompressionConfig::nibble_aligned()).compress(&kernel.module).unwrap();

    let mut m1 = Machine::new(1 << 20);
    kernel.apply_init(&mut m1);
    let mut lf = LinearFetcher::new(kernel.module.code.clone());
    let r1 = run(&mut m1, &mut lf, 0, 1_000_000).unwrap();

    let mut m2 = Machine::new(1 << 20);
    kernel.apply_init(&mut m2);
    let mut cf = CompressedFetcher::new(&compressed);
    let r2 = run(&mut m2, &mut cf, 0, 1_000_000).unwrap();

    assert_eq!(r1.exit_code, r2.exit_code);
    assert!(
        r2.stats.bits_per_insn() <= r1.stats.bits_per_insn(),
        "compressed {} vs linear {}",
        r2.stats.bits_per_insn(),
        r1.stats.bits_per_insn()
    );
}

#[test]
fn container_roundtrip_executes_identically() {
    // Flash-image path: compress -> serialize -> deserialize -> boot.
    use codense_core::container::{deserialize, serialize};
    for kernel in kernels::all() {
        let compressed =
            Compressor::new(CompressionConfig::nibble_aligned()).compress(&kernel.module).unwrap();
        let image = deserialize(&serialize(&compressed)).unwrap();
        assert_eq!(image, compressed.to_image());

        let mut machine = Machine::new(1 << 20);
        kernel.apply_init(&mut machine);
        let mut fetch = CompressedFetcher::from_image(&image);
        let result = run(&mut machine, &mut fetch, 0, 1_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        assert_eq!(result.exit_code, kernel.expected, "{}", kernel.name);
    }
}

#[test]
fn dictionary_cache_models_section_3_3() {
    // §3.3: a small on-chip dictionary cache backed by the data segment.
    // Bigger caches can only hit more, and an unbounded cache misses each
    // used entry exactly once (cold loads).
    let kernel = kernels::bubble_sort();
    let compressed =
        Compressor::new(CompressionConfig::nibble_aligned()).compress(&kernel.module).unwrap();

    let run_with = |entries: usize| {
        let mut machine = Machine::new(1 << 20);
        kernel.apply_init(&mut machine);
        let mut fetch = CompressedFetcher::new(&compressed).with_dict_cache(entries);
        let result = run(&mut machine, &mut fetch, 0, 1_000_000).unwrap();
        assert_eq!(result.exit_code, kernel.expected);
        result.stats
    };

    let tiny = run_with(1);
    let small = run_with(4);
    let huge = run_with(10_000);
    assert_eq!(tiny.codewords, small.codewords);
    assert_eq!(tiny.dict_hits + tiny.dict_misses, tiny.codewords);
    assert!(small.dict_misses <= tiny.dict_misses);
    assert!(huge.dict_misses <= small.dict_misses);
    // Unbounded: one cold miss per distinct entry used.
    assert!(huge.dict_misses <= compressed.dictionary.len() as u64);
    assert!(huge.dict_bytes_loaded <= compressed.dictionary_bytes() as u64);
    // Without a cache configured, no dictionary traffic is counted.
    let mut machine = Machine::new(1 << 20);
    kernel.apply_init(&mut machine);
    let mut fetch = CompressedFetcher::new(&compressed);
    let plain = run(&mut machine, &mut fetch, 0, 1_000_000).unwrap();
    assert_eq!(plain.stats.dict_misses, 0);
    assert_eq!(plain.stats.dict_hits, 0);
}
