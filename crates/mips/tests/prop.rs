//! Property tests for the MIPS ISA layer, driven by the in-repo
//! deterministic generator ([`codense_codegen::Rng`]) with fixed seeds — no
//! external property-testing crate, so the workspace builds fully offline.
//! Mirrors `codense-ppc`'s suite.

use codense_codegen::Rng;
use codense_mips::branch::{patch_offset_units, read_offset_units, rel_branch_info, RelBranchKind};
use codense_mips::{decode, encode, MInsn};

const CASES: usize = 512;

/// Total decode/encode identity over the full 32-bit space. Stronger than
/// the PowerPC property: because only canonical encodings decode to a named
/// variant, `encode(decode(w)) == w` holds for *every* word, not just a
/// fixpoint.
#[test]
fn decode_encode_identity() {
    let mut rng = Rng::new(0x3150_0001);
    for _ in 0..CASES * 8 {
        let w = rng.next_u64() as u32;
        assert_eq!(encode(&decode(w)), w, "word {w:#010x}");
    }
    // Boundary words the uniform stream is unlikely to hit.
    for w in [0u32, u32::MAX, 1 << 26, 0x8000_0000, 0x7fff_ffff, 0x0000_000c] {
        assert_eq!(encode(&decode(w)), w, "word {w:#010x}");
    }
}

/// Branch-field patching round-trips and preserves all other bits (I16).
#[test]
fn patch_roundtrip_i16() {
    let mut rng = Rng::new(0x3150_0002);
    for _ in 0..CASES {
        let rs = codense_mips::Reg::new(rng.below(32) as u8).unwrap();
        let rt = codense_mips::Reg::new(rng.below(32) as u8).unwrap();
        let units = rng.range(0, 65535) as i32 - 32768;
        let word = encode(&MInsn::Beq { rs, rt, offset: 0 });
        let patched = patch_offset_units(word, RelBranchKind::I16, units);
        assert_eq!(read_offset_units(patched, RelBranchKind::I16), units);
        assert_eq!(patched >> 16, word >> 16);
    }
}

/// Same for the 26-bit jump field.
#[test]
fn patch_roundtrip_j26() {
    let mut rng = Rng::new(0x3150_0003);
    for _ in 0..CASES {
        let lk = rng.chance(0.5);
        let units = rng.range(0, (1 << 26) - 1) as i32 - (1 << 25);
        let word = encode(&if lk { MInsn::Jal { offset: 0 } } else { MInsn::J { offset: 0 } });
        let patched = patch_offset_units(word, RelBranchKind::J26, units);
        assert_eq!(read_offset_units(patched, RelBranchKind::J26), units);
        assert_eq!(patched >> 26, word >> 26);
    }
}

/// rel_branch_info agrees with the decoder.
#[test]
fn branch_info_consistent() {
    let mut rng = Rng::new(0x3150_0004);
    for case in 0..CASES * 8 {
        // Half the cases land in the branch opcodes so the Some arms are
        // exercised heavily, not just the None fallthrough.
        let w = if case % 2 == 0 {
            let op = [0x01u32, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07][rng.below(7)];
            (op << 26) | (rng.next_u64() as u32 & 0x03ff_ffff)
        } else {
            rng.next_u64() as u32
        };
        let info = rel_branch_info(w);
        match decode(w) {
            MInsn::J { offset } => {
                let i = info.expect("relative j");
                assert_eq!((i.kind, i.offset, i.lk), (RelBranchKind::J26, offset, false));
            }
            MInsn::Jal { offset } => {
                let i = info.expect("relative jal");
                assert_eq!((i.kind, i.offset, i.lk), (RelBranchKind::J26, offset, true));
            }
            MInsn::Bltz { offset, .. }
            | MInsn::Bgez { offset, .. }
            | MInsn::Beq { offset, .. }
            | MInsn::Bne { offset, .. }
            | MInsn::Blez { offset, .. }
            | MInsn::Bgtz { offset, .. } => {
                let i = info.expect("relative conditional");
                assert_eq!((i.kind, i.offset, i.lk), (RelBranchKind::I16, offset, false));
            }
            _ => assert!(info.is_none(), "unexpected branch info for {w:#010x}"),
        }
    }
}

/// Escape-byte reservation boundary: a word decodes to `Illegal` *because of
/// its primary opcode* exactly when its top byte is in the escape set.
#[test]
fn escape_reservation_boundary() {
    use codense_isa::IsaRef;
    let isa = IsaRef(&codense_mips::ISA);
    let mut rng = Rng::new(0x3150_0006);
    for _ in 0..CASES * 4 {
        let w = rng.next_u64() as u32;
        let top = (w >> 24) as u8;
        if isa.escape_index(top).is_some() {
            // A reserved primary can never decode to an executable insn.
            assert!(matches!(decode(w), MInsn::Illegal(x) if x == w), "word {w:#010x}");
        }
    }
    // Adjacent non-escape bytes around each escape run stay legal as bytes
    // (their primaries are implemented or at least not reserved).
    for b in [0x47u8, 0x50, 0x57, 0x60, 0x67, 0x70, 0xc7, 0xcc, 0xe7, 0xec] {
        assert_eq!(isa.escape_index(b), None, "byte {b:#04x}");
    }
    assert_eq!(isa.escape_bytes().len(), 32);
}

/// The assembler resolves arbitrary in-range label graphs correctly.
#[test]
fn assembler_resolves_random_branch_graphs() {
    use codense_mips::asm::Assembler;
    use codense_mips::reg::{V0, ZERO};
    let mut rng = Rng::new(0x3150_0005);
    for _ in 0..CASES {
        let targets: Vec<usize> = (0..rng.range(1, 11)).map(|_| rng.below(50)).collect();
        let body = 50usize;
        let mut a = Assembler::new();
        for i in 0..body {
            a.label(&format!("L{i}"));
            a.emit(MInsn::Addiu { rt: V0, rs: V0, imm: i as i16 });
        }
        let branch_base = a.here();
        for &t in &targets {
            if rng.chance(0.5) {
                a.bne(V0, ZERO, &format!("L{t}"));
            } else {
                a.j(&format!("L{t}"));
            }
        }
        let words = a.finish().unwrap();
        for (j, &t) in targets.iter().enumerate() {
            let at = branch_base + j;
            let info = rel_branch_info(words[at]).expect("branch");
            assert_eq!(at as i64 + (info.offset / 4) as i64, t as i64);
        }
    }
}
