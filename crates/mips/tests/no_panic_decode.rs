//! Decoder robustness over a deterministic sample of the 32-bit space.
//!
//! The no-panic decoder policy: `decode` must accept *any* word — returning
//! `MInsn::Illegal` for everything outside the canonical subset — and the
//! textual pipeline (`disassemble` → `parse_insn` → `encode`) must
//! round-trip every decodable word exactly. The sample is seeded SplitMix64,
//! so failures reproduce bit-for-bit. Mirrors `codense-ppc`'s suite.

use codense_mips::{decode, encode, MInsn};

/// SplitMix64 (same stream as `codense_codegen::Rng`, inlined to keep this
/// crate's dev-dependencies closed).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

const SAMPLE: usize = 1_000_000;
const SEED: u64 = 0x5EED_DEC0_DE00_0002;

/// Deterministic word sample: uniform random words, plus words biased toward
/// in-subset primary opcodes (so the interesting decode arms see dense
/// coverage of their modifier bits, not just 1-in-64 of the space).
fn sample_words() -> Vec<u32> {
    let mut rng = Rng(SEED);
    let mut words = Vec::with_capacity(SAMPLE);
    for i in 0..SAMPLE {
        let w = rng.next() as u32;
        words.push(match i % 4 {
            // Raw random word.
            0 => w,
            // Random word under a cycling primary (covers every primary
            // including the eight reserved-illegal ones).
            1 => (w & 0x03FF_FFFF) | (((i / 4) as u32 % 64) << 26),
            // SPECIAL (the big R-format funct space) with random fields.
            2 => w & 0x03FF_FFFF,
            // REGIMM with random rt condition codes.
            _ => (w & 0x03FF_FFFF) | (1 << 26),
        });
    }
    words
}

#[test]
fn decode_never_panics_over_one_million_words() {
    let mut legal = 0u64;
    let mut illegal = 0u64;
    for w in sample_words() {
        match decode(w) {
            MInsn::Illegal(word) => {
                assert_eq!(word, w, "Illegal must carry the original word");
                illegal += 1;
            }
            _ => legal += 1,
        }
    }
    // Sanity on the sample composition: both arms are well exercised.
    assert!(legal > 10_000, "sample decoded almost nothing legal: {legal}");
    assert!(illegal > 10_000, "sample decoded almost nothing illegal: {illegal}");
}

#[test]
fn decode_encode_identity_on_all_words() {
    // Stronger than the PowerPC fixpoint property: the MIPS decoder accepts
    // only canonical encodings (must-be-zero fields enforced), so re-encoding
    // reproduces every sampled word bit-for-bit, legal or not.
    for w in sample_words() {
        assert_eq!(encode(&decode(w)), w, "decode/encode not identity for {w:#010x}");
    }
}

#[test]
fn disasm_parse_encode_roundtrip_on_decodable_words() {
    // Every decodable sampled word must survive the textual pipeline:
    // disassemble it, parse the text back, and get the same instruction.
    // The address matters for PC-relative branches (disasm prints resolved
    // targets), so use a fixed mid-range one.
    let addr = 0x0010_0000;
    let mut checked = 0u64;
    for w in sample_words() {
        let insn = decode(w);
        if matches!(insn, MInsn::Illegal(_)) {
            continue;
        }
        let text = codense_mips::disasm::disassemble_insn(&insn, addr);
        let parsed = codense_mips::parse::parse_insn(&text, addr)
            .unwrap_or_else(|e| panic!("{w:#010x}: cannot re-parse `{text}`: {e}"));
        assert_eq!(parsed, insn, "{w:#010x}: `{text}` re-parsed to a different instruction");
        checked += 1;
    }
    assert!(checked > 10_000, "round-trip exercised too few words: {checked}");
}
