//! Primary opcode and function-field constants for the implemented subset,
//! and the illegal primary opcodes used for compression escape bytes.

/// Primary (6-bit, bits 31–26) opcodes of the implemented subset.
#[allow(missing_docs)] // each constant is named for its mnemonic / format
pub mod op {
    pub const SPECIAL: u32 = 0x00;
    pub const REGIMM: u32 = 0x01;
    pub const J: u32 = 0x02;
    pub const JAL: u32 = 0x03;
    pub const BEQ: u32 = 0x04;
    pub const BNE: u32 = 0x05;
    pub const BLEZ: u32 = 0x06;
    pub const BGTZ: u32 = 0x07;
    pub const ADDIU: u32 = 0x09;
    pub const SLTI: u32 = 0x0a;
    pub const SLTIU: u32 = 0x0b;
    pub const ANDI: u32 = 0x0c;
    pub const ORI: u32 = 0x0d;
    pub const XORI: u32 = 0x0e;
    pub const LUI: u32 = 0x0f;
    pub const LB: u32 = 0x20;
    pub const LH: u32 = 0x21;
    pub const LW: u32 = 0x23;
    pub const LBU: u32 = 0x24;
    pub const LHU: u32 = 0x25;
    pub const SB: u32 = 0x28;
    pub const SH: u32 = 0x29;
    pub const SW: u32 = 0x2b;
}

/// Function (6-bit, bits 5–0) codes under the SPECIAL primary opcode.
#[allow(missing_docs)] // each constant is named for its mnemonic
pub mod funct {
    pub const SLL: u32 = 0x00;
    pub const SRL: u32 = 0x02;
    pub const SRA: u32 = 0x03;
    pub const SLLV: u32 = 0x04;
    pub const SRLV: u32 = 0x06;
    pub const SRAV: u32 = 0x07;
    pub const JR: u32 = 0x08;
    pub const JALR: u32 = 0x09;
    pub const SYSCALL: u32 = 0x0c;
    pub const BREAK: u32 = 0x0d;
    pub const MUL: u32 = 0x18;
    pub const DIV: u32 = 0x1a;
    pub const DIVU: u32 = 0x1b;
    pub const ADDU: u32 = 0x21;
    pub const SUBU: u32 = 0x23;
    pub const AND: u32 = 0x24;
    pub const OR: u32 = 0x25;
    pub const XOR: u32 = 0x26;
    pub const NOR: u32 = 0x27;
    pub const SLT: u32 = 0x2a;
    pub const SLTU: u32 = 0x2b;
}

/// `rt`-field condition codes under the REGIMM primary opcode.
#[allow(missing_docs)] // each constant is named for its mnemonic
pub mod regimm {
    pub const BLTZ: u32 = 0x00;
    pub const BGEZ: u32 = 0x01;
}

/// The eight illegal 6-bit primary opcodes reserved for compression escapes.
///
/// Like PowerPC (§4.1 of the paper), the MIPS-like subset reserves eight
/// primary opcodes no instruction of the executable subset uses; each
/// contributes four escape byte patterns (the two remaining bits of the top
/// byte are free), for 32 escape bytes. On real MIPS-I these slots hold
/// coprocessor and 64-bit-only opcodes, which this subset omits entirely.
pub const ILLEGAL_PRIMARY: [u32; 8] = [0x12, 0x13, 0x16, 0x17, 0x1a, 0x1b, 0x32, 0x3a];

/// Returns `true` if `op` is one of the eight reserved illegal primary
/// opcodes.
pub fn is_illegal_primary(op: u32) -> bool {
    ILLEGAL_PRIMARY.contains(&(op & 0x3f))
}

/// The 32 escape bytes available to the baseline compression scheme: every
/// byte whose top 6 bits form an illegal primary opcode.
pub fn escape_bytes() -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    for &op in &ILLEGAL_PRIMARY {
        for low in 0..4u8 {
            out.push(((op as u8) << 2) | low);
        }
    }
    out
}

/// Extracts the primary opcode (bits 31–26) of a word.
pub const fn primary_of(word: u32) -> u32 {
    word >> 26
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_bytes_are_32_distinct_and_illegal() {
        let e = escape_bytes();
        assert_eq!(e.len(), 32);
        let mut sorted = e.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32);
        for b in e {
            assert!(is_illegal_primary((b as u32) >> 2));
        }
    }

    #[test]
    fn legal_opcodes_are_not_escapes() {
        for o in [op::SPECIAL, op::ADDIU, op::LW, op::J, op::BEQ, op::LUI, op::SW] {
            assert!(!is_illegal_primary(o));
        }
    }

    #[test]
    fn primary_extraction() {
        assert_eq!(primary_of(0x2442_0001), op::ADDIU); // addiu $2,$2,1
        assert_eq!(primary_of(0x0000_000c), op::SPECIAL); // syscall
    }
}
