//! Instruction encoding: [`MInsn`] → raw 32-bit words.

use crate::insn::MInsn;
use crate::opcode::{funct, op, regimm};
use crate::reg::Reg;

fn r_form(f: u32, rs: Reg, rt: Reg, rd: Reg, sa: u8) -> u32 {
    (op::SPECIAL << 26)
        | (rs.field() << 21)
        | (rt.field() << 16)
        | (rd.field() << 11)
        | ((sa as u32 & 0x1f) << 6)
        | f
}

fn i_form(o: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
    (o << 26) | (rs.field() << 21) | (rt.field() << 16) | imm as u32
}

/// Byte branch offset → raw 16-bit word-displacement field.
fn b_field(offset: i32) -> u16 {
    ((offset >> 2) as u32 & 0xffff) as u16
}

/// Encodes an instruction to its canonical word form.
///
/// The inverse of [`crate::decode`]: `decode(encode(&i)) == i` for every
/// constructible instruction, and `encode(&decode(w)) == w` for every word.
///
/// ```
/// use codense_mips::{encode, MInsn, reg::{T0, T1}};
/// let w = encode(&MInsn::Addu { rd: T0, rs: T0, rt: T1 });
/// assert_eq!(w, 0x0109_4021);
/// ```
pub fn encode(insn: &MInsn) -> u32 {
    use MInsn::*;
    let zero = Reg::new(0).unwrap();
    match *insn {
        Sll { rd, rt, sa } => r_form(funct::SLL, zero, rt, rd, sa),
        Srl { rd, rt, sa } => r_form(funct::SRL, zero, rt, rd, sa),
        Sra { rd, rt, sa } => r_form(funct::SRA, zero, rt, rd, sa),
        Sllv { rd, rt, rs } => r_form(funct::SLLV, rs, rt, rd, 0),
        Srlv { rd, rt, rs } => r_form(funct::SRLV, rs, rt, rd, 0),
        Srav { rd, rt, rs } => r_form(funct::SRAV, rs, rt, rd, 0),

        Jr { rs } => r_form(funct::JR, rs, zero, zero, 0),
        Jalr { rd, rs } => r_form(funct::JALR, rs, zero, rd, 0),
        Syscall => op::SPECIAL << 26 | funct::SYSCALL,
        Break => op::SPECIAL << 26 | funct::BREAK,

        Mul { rd, rs, rt } => r_form(funct::MUL, rs, rt, rd, 0),
        Div { rd, rs, rt } => r_form(funct::DIV, rs, rt, rd, 0),
        Divu { rd, rs, rt } => r_form(funct::DIVU, rs, rt, rd, 0),
        Addu { rd, rs, rt } => r_form(funct::ADDU, rs, rt, rd, 0),
        Subu { rd, rs, rt } => r_form(funct::SUBU, rs, rt, rd, 0),
        And { rd, rs, rt } => r_form(funct::AND, rs, rt, rd, 0),
        Or { rd, rs, rt } => r_form(funct::OR, rs, rt, rd, 0),
        Xor { rd, rs, rt } => r_form(funct::XOR, rs, rt, rd, 0),
        Nor { rd, rs, rt } => r_form(funct::NOR, rs, rt, rd, 0),
        Slt { rd, rs, rt } => r_form(funct::SLT, rs, rt, rd, 0),
        Sltu { rd, rs, rt } => r_form(funct::SLTU, rs, rt, rd, 0),

        Bltz { rs, offset } => {
            (op::REGIMM << 26) | (rs.field() << 21) | (regimm::BLTZ << 16) | b_field(offset) as u32
        }
        Bgez { rs, offset } => {
            (op::REGIMM << 26) | (rs.field() << 21) | (regimm::BGEZ << 16) | b_field(offset) as u32
        }
        Beq { rs, rt, offset } => i_form(op::BEQ, rs, rt, b_field(offset)),
        Bne { rs, rt, offset } => i_form(op::BNE, rs, rt, b_field(offset)),
        Blez { rs, offset } => i_form(op::BLEZ, rs, zero, b_field(offset)),
        Bgtz { rs, offset } => i_form(op::BGTZ, rs, zero, b_field(offset)),
        J { offset } => (op::J << 26) | ((offset >> 2) as u32 & 0x03ff_ffff),
        Jal { offset } => (op::JAL << 26) | ((offset >> 2) as u32 & 0x03ff_ffff),

        Addiu { rt, rs, imm } => i_form(op::ADDIU, rs, rt, imm as u16),
        Slti { rt, rs, imm } => i_form(op::SLTI, rs, rt, imm as u16),
        Sltiu { rt, rs, imm } => i_form(op::SLTIU, rs, rt, imm as u16),
        Andi { rt, rs, imm } => i_form(op::ANDI, rs, rt, imm),
        Ori { rt, rs, imm } => i_form(op::ORI, rs, rt, imm),
        Xori { rt, rs, imm } => i_form(op::XORI, rs, rt, imm),
        Lui { rt, imm } => i_form(op::LUI, zero, rt, imm),

        Lb { rt, base, offset } => i_form(op::LB, base, rt, offset as u16),
        Lh { rt, base, offset } => i_form(op::LH, base, rt, offset as u16),
        Lw { rt, base, offset } => i_form(op::LW, base, rt, offset as u16),
        Lbu { rt, base, offset } => i_form(op::LBU, base, rt, offset as u16),
        Lhu { rt, base, offset } => i_form(op::LHU, base, rt, offset as u16),
        Sb { rt, base, offset } => i_form(op::SB, base, rt, offset as u16),
        Sh { rt, base, offset } => i_form(op::SH, base, rt, offset as u16),
        Sw { rt, base, offset } => i_form(op::SW, base, rt, offset as u16),

        Illegal(word) => word,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    #[test]
    fn known_words() {
        // Cross-checked against GNU `as -mips32` output.
        assert_eq!(encode(&MInsn::Sll { rd: ZERO, rt: ZERO, sa: 0 }), 0x0000_0000); // nop
        assert_eq!(encode(&MInsn::Addiu { rt: V0, rs: ZERO, imm: 1 }), 0x2402_0001);
        assert_eq!(encode(&MInsn::Lw { rt: T0, base: SP, offset: 16 }), 0x8fa8_0010);
        assert_eq!(encode(&MInsn::Sw { rt: RA, base: SP, offset: -4 }), 0xafbf_fffc);
        assert_eq!(encode(&MInsn::Jr { rs: RA }), 0x03e0_0008);
        assert_eq!(encode(&MInsn::Syscall), 0x0000_000c);
        assert_eq!(encode(&MInsn::Lui { rt: AT, imm: 0x0060 }), 0x3c01_0060);
    }

    #[test]
    fn branch_field_is_word_displacement() {
        // beq $8,$9,.+8 → field 2.
        assert_eq!(encode(&MInsn::Beq { rs: T0, rt: T1, offset: 8 }) & 0xffff, 2);
        // bne backwards: field is the truncated two's complement.
        assert_eq!(encode(&MInsn::Bne { rs: T0, rt: T1, offset: -4 }) & 0xffff, 0xffff);
        // j .+0x40 → 26-bit field 16.
        assert_eq!(encode(&MInsn::J { offset: 0x40 }) & 0x03ff_ffff, 16);
    }
}
