//! Architectural state and instruction semantics for the MIPS-like subset.
//!
//! Like the PowerPC core, the machine is PC-less: the program counter lives
//! in the fetch engine (`codense-vm`) because a compressed-program
//! processor's PC is nibble-granular. All code addresses the machine sees
//! (`$ra`, `jr`/`jalr` targets) are fetch-domain nibble addresses.

pub use codense_isa::{MachineError, Outcome};

use crate::insn::MInsn;
use crate::reg::Reg;

/// Architectural state: 32 GPRs (with `$0` hardwired to zero) and a flat
/// big-endian data memory. The subset has no HI/LO pair — `mul`/`div` are
/// the three-operand R6-style forms — and no architected flags.
#[derive(Debug, Clone)]
pub struct Machine {
    /// General-purpose registers; `gpr[0]` stays zero (writes are ignored).
    pub gpr: [u32; 32],
    /// Data memory, byte-addressed, big-endian multi-byte accesses.
    pub mem: Vec<u8>,
}

impl Machine {
    /// Creates a machine with the given data-memory size in bytes, with the
    /// stack pointer (`$sp`) parked near the top of memory.
    pub fn new(mem_bytes: usize) -> Machine {
        let mut m = Machine { gpr: [0; 32], mem: vec![0; mem_bytes] };
        m.gpr[29] = (mem_bytes as u32).saturating_sub(64) & !15;
        m
    }

    // The mask restates `Reg`'s `< 32` invariant where the optimizer can
    // see it, so hot register accesses carry no bounds check.
    #[inline(always)]
    fn reg(&self, r: Reg) -> u32 {
        self.gpr[(r.number() & 31) as usize]
    }

    #[inline(always)]
    fn set_reg(&mut self, r: Reg, v: u32) {
        if r.number() != 0 {
            self.gpr[(r.number() & 31) as usize] = v;
        }
    }

    // ---- memory -----------------------------------------------------------

    #[inline(always)]
    fn check(&self, addr: u32, len: u32) -> Result<usize, MachineError> {
        let end = addr as u64 + len as u64;
        if end <= self.mem.len() as u64 {
            Ok(addr as usize)
        } else {
            Err(MachineError::MemoryFault { addr })
        }
    }

    /// Reads a big-endian 32-bit word.
    #[inline]
    pub fn load32(&self, addr: u32) -> Result<u32, MachineError> {
        let i = self.check(addr, 4)?;
        // Slice-then-convert compiles to one 4-byte load + byte swap; the
        // element-wise form is four separate byte loads.
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.mem[i..i + 4]);
        Ok(u32::from_be_bytes(b))
    }

    /// Reads a big-endian 16-bit halfword.
    pub fn load16(&self, addr: u32) -> Result<u16, MachineError> {
        let i = self.check(addr, 2)?;
        Ok(u16::from_be_bytes([self.mem[i], self.mem[i + 1]]))
    }

    /// Reads a byte.
    pub fn load8(&self, addr: u32) -> Result<u8, MachineError> {
        let i = self.check(addr, 1)?;
        Ok(self.mem[i])
    }

    /// Writes a big-endian 32-bit word.
    #[inline]
    pub fn store32(&mut self, addr: u32, v: u32) -> Result<(), MachineError> {
        let i = self.check(addr, 4)?;
        self.mem[i..i + 4].copy_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Writes a big-endian 16-bit halfword.
    pub fn store16(&mut self, addr: u32, v: u16) -> Result<(), MachineError> {
        let i = self.check(addr, 2)?;
        self.mem[i..i + 2].copy_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Writes a byte.
    pub fn store8(&mut self, addr: u32, v: u8) -> Result<(), MachineError> {
        let i = self.check(addr, 1)?;
        self.mem[i] = v;
        Ok(())
    }

    #[inline(always)]
    fn ea(&self, base: Reg, offset: i16) -> u32 {
        self.reg(base).wrapping_add(offset as i32 as u32)
    }

    // ---- shared op bodies --------------------------------------------------
    //
    // The forms that dominate compiled code are factored out so `step` and
    // the hot `step_insn` dispatch execute the same bodies.

    #[inline(always)]
    fn rel(offset: i32, cur_pc: u64, g: i64) -> Outcome {
        let units = (offset / 4) as i64;
        Outcome::Branch((cur_pc as i64 + units * g) as u64)
    }

    #[inline(always)]
    fn op_sll(&mut self, rd: Reg, rt: Reg, sa: u8) {
        self.set_reg(rd, self.reg(rt) << sa);
    }

    #[inline(always)]
    fn op_srl(&mut self, rd: Reg, rt: Reg, sa: u8) {
        self.set_reg(rd, self.reg(rt) >> sa);
    }

    #[inline(always)]
    fn op_addu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.set_reg(rd, self.reg(rs).wrapping_add(self.reg(rt)));
    }

    #[inline(always)]
    fn op_subu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.set_reg(rd, self.reg(rs).wrapping_sub(self.reg(rt)));
    }

    #[inline(always)]
    fn op_and(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.set_reg(rd, self.reg(rs) & self.reg(rt));
    }

    #[inline(always)]
    fn op_or(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.set_reg(rd, self.reg(rs) | self.reg(rt));
    }

    #[inline(always)]
    fn op_xor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.set_reg(rd, self.reg(rs) ^ self.reg(rt));
    }

    #[inline(always)]
    fn op_slt(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.set_reg(rd, u32::from((self.reg(rs) as i32) < (self.reg(rt) as i32)));
    }

    #[inline(always)]
    fn op_sltu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.set_reg(rd, u32::from(self.reg(rs) < self.reg(rt)));
    }

    #[inline(always)]
    fn op_addiu(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.set_reg(rt, self.reg(rs).wrapping_add(imm as i32 as u32));
    }

    #[inline(always)]
    fn op_slti(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.set_reg(rt, u32::from((self.reg(rs) as i32) < imm as i32));
    }

    #[inline(always)]
    fn op_sltiu(&mut self, rt: Reg, rs: Reg, imm: i16) {
        // The immediate is sign-extended, then compared unsigned.
        self.set_reg(rt, u32::from(self.reg(rs) < imm as i32 as u32));
    }

    #[inline(always)]
    fn op_andi(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.set_reg(rt, self.reg(rs) & imm as u32);
    }

    #[inline(always)]
    fn op_ori(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.set_reg(rt, self.reg(rs) | imm as u32);
    }

    #[inline(always)]
    fn op_lui(&mut self, rt: Reg, imm: u16) {
        self.set_reg(rt, (imm as u32) << 16);
    }

    #[inline(always)]
    fn op_lw(&mut self, rt: Reg, base: Reg, offset: i16) -> Result<(), MachineError> {
        let v = self.load32(self.ea(base, offset))?;
        self.set_reg(rt, v);
        Ok(())
    }

    #[inline(always)]
    fn op_sw(&mut self, rt: Reg, base: Reg, offset: i16) -> Result<(), MachineError> {
        self.store32(self.ea(base, offset), self.reg(rt))
    }

    #[inline(always)]
    fn op_beq(&self, rs: Reg, rt: Reg, offset: i32, cur_pc: u64, g: i64) -> Outcome {
        if self.reg(rs) == self.reg(rt) {
            Self::rel(offset, cur_pc, g)
        } else {
            Outcome::Next
        }
    }

    #[inline(always)]
    fn op_bne(&self, rs: Reg, rt: Reg, offset: i32, cur_pc: u64, g: i64) -> Outcome {
        if self.reg(rs) != self.reg(rt) {
            Self::rel(offset, cur_pc, g)
        } else {
            Outcome::Next
        }
    }

    #[inline(always)]
    fn op_bltz(&self, rs: Reg, offset: i32, cur_pc: u64, g: i64) -> Outcome {
        if (self.reg(rs) as i32) < 0 {
            Self::rel(offset, cur_pc, g)
        } else {
            Outcome::Next
        }
    }

    #[inline(always)]
    fn op_bgez(&self, rs: Reg, offset: i32, cur_pc: u64, g: i64) -> Outcome {
        if (self.reg(rs) as i32) >= 0 {
            Self::rel(offset, cur_pc, g)
        } else {
            Outcome::Next
        }
    }

    #[inline(always)]
    fn op_blez(&self, rs: Reg, offset: i32, cur_pc: u64, g: i64) -> Outcome {
        if (self.reg(rs) as i32) <= 0 {
            Self::rel(offset, cur_pc, g)
        } else {
            Outcome::Next
        }
    }

    #[inline(always)]
    fn op_bgtz(&self, rs: Reg, offset: i32, cur_pc: u64, g: i64) -> Outcome {
        if (self.reg(rs) as i32) > 0 {
            Self::rel(offset, cur_pc, g)
        } else {
            Outcome::Next
        }
    }

    #[inline(always)]
    fn op_jal(&mut self, offset: i32, cur_pc: u64, next_pc: u64, g: i64) -> Outcome {
        self.gpr[31] = next_pc as u32;
        Self::rel(offset, cur_pc, g)
    }

    #[inline(always)]
    fn op_jalr(&mut self, rd: Reg, rs: Reg, next_pc: u64) -> Outcome {
        // Read the target before writing rd: `jalr $t0,$t0` must branch to
        // the old value.
        let target = self.reg(rs);
        self.set_reg(rd, next_pc as u32);
        Outcome::Branch(target as u64)
    }

    /// Executes one instruction.
    ///
    /// `cur_pc`/`next_pc` are the instruction's own and successor addresses
    /// in the fetch domain; `granule` is the fetch domain's branch-offset
    /// unit in nibbles (8 uncompressed, 4/2/1 compressed). Branch offset
    /// fields are interpreted as raw units scaled by `granule`, exactly as
    /// the paper's modified control unit does (§3.2.2). There are no delay
    /// slots (see [`crate::insn`]).
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] on faults; the machine state reflects the
    /// partial execution (registers already written stay written).
    pub fn step(
        &mut self,
        insn: &MInsn,
        cur_pc: u64,
        next_pc: u64,
        granule: u32,
    ) -> Result<Outcome, MachineError> {
        use MInsn::*;
        let g = granule as i64;
        let rel = |offset: i32| Self::rel(offset, cur_pc, g);
        match *insn {
            // ---- shifts --------------------------------------------------
            Sll { rd, rt, sa } => self.op_sll(rd, rt, sa),
            Srl { rd, rt, sa } => self.op_srl(rd, rt, sa),
            Sra { rd, rt, sa } => self.set_reg(rd, ((self.reg(rt) as i32) >> sa) as u32),
            Sllv { rd, rt, rs } => self.set_reg(rd, self.reg(rt) << (self.reg(rs) & 0x1f)),
            Srlv { rd, rt, rs } => self.set_reg(rd, self.reg(rt) >> (self.reg(rs) & 0x1f)),
            Srav { rd, rt, rs } => {
                self.set_reg(rd, ((self.reg(rt) as i32) >> (self.reg(rs) & 0x1f)) as u32);
            }

            // ---- R-format arithmetic and logic ---------------------------
            Mul { rd, rs, rt } => self.set_reg(rd, self.reg(rs).wrapping_mul(self.reg(rt))),
            Div { rd, rs, rt } => {
                let a = self.reg(rs) as i32;
                let b = self.reg(rt) as i32;
                // Architecturally undefined for /0 and MIN/-1; we define 0
                // (same convention as the PowerPC core's divw).
                let v = if b == 0 || (a == i32::MIN && b == -1) { 0 } else { a / b } as u32;
                self.set_reg(rd, v);
            }
            Divu { rd, rs, rt } => {
                let v = self.reg(rs).checked_div(self.reg(rt)).unwrap_or(0);
                self.set_reg(rd, v);
            }
            Addu { rd, rs, rt } => self.op_addu(rd, rs, rt),
            Subu { rd, rs, rt } => self.op_subu(rd, rs, rt),
            And { rd, rs, rt } => self.op_and(rd, rs, rt),
            Or { rd, rs, rt } => self.op_or(rd, rs, rt),
            Xor { rd, rs, rt } => self.op_xor(rd, rs, rt),
            Nor { rd, rs, rt } => self.set_reg(rd, !(self.reg(rs) | self.reg(rt))),
            Slt { rd, rs, rt } => self.op_slt(rd, rs, rt),
            Sltu { rd, rs, rt } => self.op_sltu(rd, rs, rt),

            // ---- I-format arithmetic and logic ---------------------------
            Addiu { rt, rs, imm } => self.op_addiu(rt, rs, imm),
            Slti { rt, rs, imm } => self.op_slti(rt, rs, imm),
            Sltiu { rt, rs, imm } => self.op_sltiu(rt, rs, imm),
            Andi { rt, rs, imm } => self.op_andi(rt, rs, imm),
            Ori { rt, rs, imm } => self.op_ori(rt, rs, imm),
            Xori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) ^ imm as u32),
            Lui { rt, imm } => self.op_lui(rt, imm),

            // ---- loads and stores ----------------------------------------
            Lb { rt, base, offset } => {
                let v = self.load8(self.ea(base, offset))? as i8;
                self.set_reg(rt, v as i32 as u32);
            }
            Lh { rt, base, offset } => {
                let v = self.load16(self.ea(base, offset))? as i16;
                self.set_reg(rt, v as i32 as u32);
            }
            Lw { rt, base, offset } => self.op_lw(rt, base, offset)?,
            Lbu { rt, base, offset } => {
                let v = self.load8(self.ea(base, offset))?;
                self.set_reg(rt, v as u32);
            }
            Lhu { rt, base, offset } => {
                let v = self.load16(self.ea(base, offset))?;
                self.set_reg(rt, v as u32);
            }
            Sb { rt, base, offset } => self.store8(self.ea(base, offset), self.reg(rt) as u8)?,
            Sh { rt, base, offset } => self.store16(self.ea(base, offset), self.reg(rt) as u16)?,
            Sw { rt, base, offset } => self.op_sw(rt, base, offset)?,

            // ---- branches ------------------------------------------------
            Bltz { rs, offset } => return Ok(self.op_bltz(rs, offset, cur_pc, g)),
            Bgez { rs, offset } => return Ok(self.op_bgez(rs, offset, cur_pc, g)),
            Beq { rs, rt, offset } => return Ok(self.op_beq(rs, rt, offset, cur_pc, g)),
            Bne { rs, rt, offset } => return Ok(self.op_bne(rs, rt, offset, cur_pc, g)),
            Blez { rs, offset } => return Ok(self.op_blez(rs, offset, cur_pc, g)),
            Bgtz { rs, offset } => return Ok(self.op_bgtz(rs, offset, cur_pc, g)),
            J { offset } => return Ok(rel(offset)),
            Jal { offset } => return Ok(self.op_jal(offset, cur_pc, next_pc, g)),
            Jr { rs } => return Ok(Outcome::Branch(self.reg(rs) as u64)),
            Jalr { rd, rs } => return Ok(self.op_jalr(rd, rs, next_pc)),

            // ---- system --------------------------------------------------
            Syscall => return Ok(Outcome::Halt),
            Break => return Err(MachineError::Trap),
            Illegal(word) => return Err(MachineError::IllegalInstruction { word }),
        }
        Ok(Outcome::Next)
    }
}

impl codense_isa::Core for Machine {
    fn step_word(
        &mut self,
        word: u32,
        cur_pc: u64,
        next_pc: u64,
        granule: u32,
    ) -> Result<Outcome, MachineError> {
        self.step(&crate::decode(word), cur_pc, next_pc, granule)
    }

    fn gpr(&self, r: usize) -> u32 {
        self.gpr[r]
    }

    fn set_gpr(&mut self, r: usize, v: u32) {
        if r != 0 {
            self.gpr[r] = v;
        }
    }

    fn write32(&mut self, addr: u32, v: u32) -> Result<(), MachineError> {
        self.store32(addr, v)
    }

    fn mem_bytes(&self) -> &[u8] {
        &self.mem
    }

    fn exit_code(&self) -> u32 {
        self.gpr[2]
    }

    fn flags(&self) -> u64 {
        0
    }
}

impl codense_isa::PredecodeCore for Machine {
    type Insn = MInsn;

    fn predecode(word: u32) -> MInsn {
        crate::decode(word)
    }

    #[inline(always)]
    fn step_insn(
        &mut self,
        insn: &MInsn,
        cur_pc: u64,
        next_pc: u64,
        granule: u32,
    ) -> Result<Outcome, MachineError> {
        use MInsn::*;
        // Hot dispatch: the forms dominating compiled code run through the
        // shared `op_*` bodies inlined into the caller's loop; everything
        // else falls back to the full interpreter.
        match *insn {
            Addiu { rt, rs, imm } => self.op_addiu(rt, rs, imm),
            Slti { rt, rs, imm } => self.op_slti(rt, rs, imm),
            Sltiu { rt, rs, imm } => self.op_sltiu(rt, rs, imm),
            Andi { rt, rs, imm } => self.op_andi(rt, rs, imm),
            Ori { rt, rs, imm } => self.op_ori(rt, rs, imm),
            Lui { rt, imm } => self.op_lui(rt, imm),
            Lw { rt, base, offset } => self.op_lw(rt, base, offset)?,
            Sw { rt, base, offset } => self.op_sw(rt, base, offset)?,
            Sll { rd, rt, sa } => self.op_sll(rd, rt, sa),
            Srl { rd, rt, sa } => self.op_srl(rd, rt, sa),
            Addu { rd, rs, rt } => self.op_addu(rd, rs, rt),
            Subu { rd, rs, rt } => self.op_subu(rd, rs, rt),
            And { rd, rs, rt } => self.op_and(rd, rs, rt),
            Or { rd, rs, rt } => self.op_or(rd, rs, rt),
            Xor { rd, rs, rt } => self.op_xor(rd, rs, rt),
            Slt { rd, rs, rt } => self.op_slt(rd, rs, rt),
            Sltu { rd, rs, rt } => self.op_sltu(rd, rs, rt),
            Beq { rs, rt, offset } => {
                return Ok(self.op_beq(rs, rt, offset, cur_pc, granule as i64))
            }
            Bne { rs, rt, offset } => {
                return Ok(self.op_bne(rs, rt, offset, cur_pc, granule as i64))
            }
            Bltz { rs, offset } => return Ok(self.op_bltz(rs, offset, cur_pc, granule as i64)),
            Bgez { rs, offset } => return Ok(self.op_bgez(rs, offset, cur_pc, granule as i64)),
            Blez { rs, offset } => return Ok(self.op_blez(rs, offset, cur_pc, granule as i64)),
            Bgtz { rs, offset } => return Ok(self.op_bgtz(rs, offset, cur_pc, granule as i64)),
            J { offset } => return Ok(Self::rel(offset, cur_pc, granule as i64)),
            Jal { offset } => return Ok(self.op_jal(offset, cur_pc, next_pc, granule as i64)),
            Jr { rs } => return Ok(Outcome::Branch(self.reg(rs) as u64)),
            Jalr { rd, rs } => return Ok(self.op_jalr(rd, rs, next_pc)),
            _ => return self.step(insn, cur_pc, next_pc, granule),
        }
        Ok(Outcome::Next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    fn m() -> Machine {
        Machine::new(64 * 1024)
    }

    fn exec(mach: &mut Machine, insn: MInsn) -> Outcome {
        mach.step(&insn, 0, 8, 8).unwrap()
    }

    #[test]
    fn zero_register_is_hardwired() {
        let mut mach = m();
        exec(&mut mach, MInsn::Addiu { rt: ZERO, rs: ZERO, imm: 5 });
        assert_eq!(mach.gpr[0], 0);
        exec(&mut mach, MInsn::Lui { rt: ZERO, imm: 0xffff });
        assert_eq!(mach.gpr[0], 0);
    }

    #[test]
    fn sp_parked_near_top() {
        let mach = Machine::new(1 << 16);
        assert_eq!(mach.gpr[29], (0x1_0000 - 64) & !15);
    }

    #[test]
    fn arithmetic_basics() {
        let mut mach = m();
        exec(&mut mach, MInsn::Addiu { rt: V0, rs: ZERO, imm: -5 });
        assert_eq!(mach.gpr[2], (-5i32) as u32);
        exec(&mut mach, MInsn::Lui { rt: V1, imm: 1 });
        assert_eq!(mach.gpr[3], 0x0001_0000);
        exec(&mut mach, MInsn::Addu { rd: A0, rs: V0, rt: V1 });
        assert_eq!(mach.gpr[4], 0x0000_fffb);
        exec(&mut mach, MInsn::Subu { rd: A1, rs: ZERO, rt: V0 });
        assert_eq!(mach.gpr[5], 5);
    }

    #[test]
    fn compare_signed_vs_unsigned() {
        let mut mach = m();
        mach.gpr[8] = (-1i32) as u32;
        exec(&mut mach, MInsn::Slt { rd: T1, rs: T0, rt: ZERO });
        assert_eq!(mach.gpr[9], 1, "-1 < 0 signed");
        exec(&mut mach, MInsn::Sltu { rd: T1, rs: T0, rt: ZERO });
        assert_eq!(mach.gpr[9], 0, "0xffffffff > 0 unsigned");
        exec(&mut mach, MInsn::Slti { rt: T1, rs: T0, imm: 0 });
        assert_eq!(mach.gpr[9], 1);
        // sltiu sign-extends then compares unsigned: imm -1 → 0xffffffff.
        mach.gpr[8] = 7;
        exec(&mut mach, MInsn::Sltiu { rt: T1, rs: T0, imm: -1 });
        assert_eq!(mach.gpr[9], 1);
    }

    #[test]
    fn memory_roundtrip_and_endianness() {
        let mut mach = m();
        mach.gpr[9] = 0x100;
        mach.gpr[8] = 0xdead_beef;
        exec(&mut mach, MInsn::Sw { rt: T0, base: T1, offset: 4 });
        assert_eq!(&mach.mem[0x104..0x108], &[0xde, 0xad, 0xbe, 0xef]);
        exec(&mut mach, MInsn::Lbu { rt: T2, base: T1, offset: 5 });
        assert_eq!(mach.gpr[10], 0xad);
        exec(&mut mach, MInsn::Lhu { rt: T2, base: T1, offset: 6 });
        assert_eq!(mach.gpr[10], 0xbeef);
        exec(&mut mach, MInsn::Lh { rt: T2, base: T1, offset: 6 });
        assert_eq!(mach.gpr[10], 0xffff_beef);
        exec(&mut mach, MInsn::Lb { rt: T2, base: T1, offset: 4 });
        assert_eq!(mach.gpr[10], 0xffff_ffde);
    }

    #[test]
    fn memory_fault_detected() {
        let mut mach = m();
        mach.gpr[9] = mach.mem.len() as u32;
        let err = mach.step(&MInsn::Lw { rt: T0, base: T1, offset: 0 }, 0, 8, 8).unwrap_err();
        assert!(matches!(err, MachineError::MemoryFault { .. }));
    }

    #[test]
    fn shifts_variable_and_immediate() {
        let mut mach = m();
        mach.gpr[8] = 0x8000_0001;
        exec(&mut mach, MInsn::Srl { rd: T1, rt: T0, sa: 4 });
        assert_eq!(mach.gpr[9], 0x0800_0000);
        exec(&mut mach, MInsn::Sra { rd: T1, rt: T0, sa: 4 });
        assert_eq!(mach.gpr[9], 0xf800_0000);
        mach.gpr[10] = 36; // only the low 5 bits count
        exec(&mut mach, MInsn::Sllv { rd: T1, rt: T0, rs: T2 });
        assert_eq!(mach.gpr[9], 0x0000_0010);
    }

    #[test]
    fn division_edge_cases_defined() {
        let mut mach = m();
        mach.gpr[8] = 7;
        exec(&mut mach, MInsn::Div { rd: T1, rs: T0, rt: ZERO });
        assert_eq!(mach.gpr[9], 0, "divide by zero yields 0 in this model");
        mach.gpr[8] = 0x8000_0000;
        mach.gpr[10] = 0xffff_ffff;
        exec(&mut mach, MInsn::Div { rd: T1, rs: T0, rt: T2 });
        assert_eq!(mach.gpr[9], 0, "MIN / -1 yields 0 in this model");
        mach.gpr[8] = 100;
        mach.gpr[10] = 7;
        exec(&mut mach, MInsn::Divu { rd: T1, rs: T0, rt: T2 });
        assert_eq!(mach.gpr[9], 14);
        exec(&mut mach, MInsn::Div { rd: T1, rs: T0, rt: T2 });
        assert_eq!(mach.gpr[9], 14);
    }

    #[test]
    fn branch_granule_scaling() {
        let mut mach = m();
        // beq $0,$0,.+16 bytes = 4 units. At granule 8: +32 nibbles.
        let beq = MInsn::Beq { rs: ZERO, rt: ZERO, offset: 16 };
        assert_eq!(mach.step(&beq, 100, 108, 8).unwrap(), Outcome::Branch(100 + 4 * 8));
        // Same instruction in a nibble-compressed program (granule 1).
        assert_eq!(mach.step(&beq, 100, 109, 1).unwrap(), Outcome::Branch(104));
        // Not taken falls through.
        mach.gpr[8] = 1;
        let bne_not = MInsn::Beq { rs: T0, rt: ZERO, offset: 16 };
        assert_eq!(mach.step(&bne_not, 100, 108, 8).unwrap(), Outcome::Next);
    }

    #[test]
    fn conditional_senses() {
        let mut mach = m();
        let taken = |mach: &mut Machine, insn: MInsn| {
            matches!(mach.step(&insn, 0, 8, 8).unwrap(), Outcome::Branch(_))
        };
        mach.gpr[8] = (-3i32) as u32;
        assert!(taken(&mut mach, MInsn::Bltz { rs: T0, offset: 8 }));
        assert!(!taken(&mut mach, MInsn::Bgez { rs: T0, offset: 8 }));
        assert!(taken(&mut mach, MInsn::Blez { rs: T0, offset: 8 }));
        assert!(!taken(&mut mach, MInsn::Bgtz { rs: T0, offset: 8 }));
        mach.gpr[8] = 0;
        assert!(taken(&mut mach, MInsn::Bgez { rs: T0, offset: 8 }));
        assert!(taken(&mut mach, MInsn::Blez { rs: T0, offset: 8 }));
        assert!(!taken(&mut mach, MInsn::Bltz { rs: T0, offset: 8 }));
    }

    #[test]
    fn call_and_return() {
        let mut mach = m();
        let out = mach.step(&MInsn::Jal { offset: 40 }, 64, 72, 8).unwrap();
        assert_eq!(out, Outcome::Branch(64 + 10 * 8));
        assert_eq!(mach.gpr[31], 72);
        let out = mach.step(&MInsn::Jr { rs: RA }, 200, 208, 8).unwrap();
        assert_eq!(out, Outcome::Branch(72));
    }

    #[test]
    fn jalr_reads_target_before_link() {
        let mut mach = m();
        mach.gpr[8] = 0x400;
        let out = mach.step(&MInsn::Jalr { rd: T0, rs: T0 }, 0, 8, 8).unwrap();
        assert_eq!(out, Outcome::Branch(0x400));
        assert_eq!(mach.gpr[8], 8, "rd gets the return address");
    }

    #[test]
    fn trap_and_halt() {
        let mut mach = m();
        assert_eq!(mach.step(&MInsn::Break, 0, 8, 8).unwrap_err(), MachineError::Trap);
        mach.gpr[2] = 42;
        assert_eq!(exec(&mut mach, MInsn::Syscall), Outcome::Halt);
        use codense_isa::Core;
        assert_eq!(mach.exit_code(), 42);
    }
}
