#![warn(missing_docs)]

//! A 32-bit MIPS-like instruction-set subset: encoding, decoding,
//! disassembly, and a label-resolving assembler.
//!
//! This crate is the second instruction-level substrate for the `codense`
//! code compression system (the first is `codense-ppc`). It exists to prove
//! that the compression pipeline — dictionary construction, codeword
//! assignment, branch patching, overflow trampolines — is ISA-neutral: the
//! whole crate plugs into the rest of the system through the
//! [`codense_isa::Isa`] trait as [`ISA`].
//!
//! The subset follows classic MIPS I R/I/J encodings with three documented
//! deviations (no delay slots; branch displacements relative to the branch
//! itself; PC-relative `j`/`jal`) — see [`insn`] for the rationale.
//!
//! * [`MInsn`] is the structured form of an instruction. [`decode`] and
//!   [`encode`] round-trip between `MInsn` and raw `u32` words; only
//!   canonical encodings decode, so `encode(decode(w)) == w` for *all* words.
//! * [`branch::rel_branch_info`] classifies PC-relative branches and exposes
//!   their offset fields so the compressor can patch them after relocation.
//! * [`opcode::ILLEGAL_PRIMARY`] lists the eight illegal 6-bit primary
//!   opcodes used to build the 32 escape bytes for codewords.
//! * [`asm::Assembler`] builds runnable programs with symbolic labels.
//! * [`disasm::disassemble`] renders conventional MIPS assembly text.
//!
//! # Example
//!
//! ```
//! use codense_mips::{decode, encode, MInsn, reg::{T0, SP}};
//!
//! let insn = MInsn::Lw { rt: T0, base: SP, offset: 16 };
//! let word = encode(&insn);
//! assert_eq!(word, 0x8fa8_0010);
//! assert_eq!(decode(word), insn);
//! assert_eq!(codense_mips::disasm::disassemble(word, 0), "lw $8,16($29)");
//! ```

pub mod asm;
pub mod branch;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod insn;
pub mod isa;
pub mod machine;
pub mod opcode;
pub mod parse;
pub mod reg;

pub use decode::decode;
pub use encode::encode;
pub use insn::MInsn;
pub use isa::ISA;
pub use machine::Machine;
pub use reg::Reg;

/// Size of one (uncompressed) instruction in bytes.
pub const INSN_BYTES: u32 = 4;

/// Serializes a slice of instruction words to big-endian bytes, the memory
/// image layout of a `.text` section on this (big-endian) machine.
///
/// ```
/// let bytes = codense_mips::words_to_bytes(&[0x2402_0001]);
/// assert_eq!(bytes, [0x24, 0x02, 0x00, 0x01]);
/// ```
pub fn words_to_bytes(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 4);
    for w in words {
        out.extend_from_slice(&w.to_be_bytes());
    }
    out
}

/// Reassembles big-endian bytes into instruction words.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of 4.
pub fn bytes_to_words(bytes: &[u8]) -> Vec<u32> {
    assert!(bytes.len().is_multiple_of(4), "text image must be word aligned");
    bytes.chunks_exact(4).map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_byte_roundtrip() {
        let words = vec![0x2402_0001, 0x03e0_0008, 0xdead_beef];
        assert_eq!(bytes_to_words(&words_to_bytes(&words)), words);
    }
}
