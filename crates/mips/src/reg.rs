//! Register newtype and O32 calling-convention aliases.
//!
//! Field values are validated at construction ([`Reg::new`]) so encoded
//! instructions are well-formed by construction.

use std::fmt;

/// A general-purpose register, `$0`–`$31`.
///
/// ```
/// use codense_mips::reg::Reg;
/// let r = Reg::new(2).unwrap();
/// assert_eq!(r.number(), 2);
/// assert_eq!(r.to_string(), "$2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from its number. Returns `None` if `n > 31`.
    pub const fn new(n: u8) -> Option<Reg> {
        if n < 32 {
            Some(Reg(n))
        } else {
            None
        }
    }

    /// Creates a register from the low 5 bits of an encoded field.
    pub(crate) const fn from_field(bits: u32) -> Reg {
        Reg((bits & 0x1f) as u8)
    }

    /// The register number, `0..=31`.
    pub const fn number(self) -> u8 {
        self.0
    }

    /// The register number as an encodable field value.
    pub(crate) const fn field(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

macro_rules! reg_consts {
    ($($(#[doc = $doc:expr])* $name:ident = $n:expr),* $(,)?) => {
        $(
            $(#[doc = $doc])*
            pub const $name: Reg = Reg($n);
        )*
    };
}

reg_consts! {
    /// `$0` — hardwired zero.
    ZERO = 0,
    /// `$1` — assembler temporary (the overflow-dispatch scratch).
    AT = 1,
    /// `$2` — first return value (`$v0`; the VM's exit code).
    V0 = 2,
    /// `$3` — second return value (`$v1`).
    V1 = 3,
    /// `$4` — first argument (`$a0`).
    A0 = 4,
    /// `$5` — second argument (`$a1`).
    A1 = 5,
    /// `$6` — third argument (`$a2`).
    A2 = 6,
    /// `$7` — fourth argument (`$a3`).
    A3 = 7,
    /// `$8` — caller-saved temporary (`$t0`).
    T0 = 8,
    /// `$9` — caller-saved temporary (`$t1`).
    T1 = 9,
    /// `$10` — caller-saved temporary (`$t2`).
    T2 = 10,
    /// `$11` — caller-saved temporary (`$t3`).
    T3 = 11,
    /// `$12` — caller-saved temporary (`$t4`).
    T4 = 12,
    /// `$13` — caller-saved temporary (`$t5`).
    T5 = 13,
    /// `$14` — caller-saved temporary (`$t6`).
    T6 = 14,
    /// `$15` — caller-saved temporary (`$t7`).
    T7 = 15,
    /// `$16` — callee-saved (`$s0`).
    S0 = 16,
    /// `$17` — callee-saved (`$s1`).
    S1 = 17,
    /// `$18` — callee-saved (`$s2`).
    S2 = 18,
    /// `$19` — callee-saved (`$s3`).
    S3 = 19,
    /// `$20` — callee-saved (`$s4`).
    S4 = 20,
    /// `$21` — callee-saved (`$s5`).
    S5 = 21,
    /// `$22` — callee-saved (`$s6`).
    S6 = 22,
    /// `$23` — callee-saved (`$s7`).
    S7 = 23,
    /// `$24` — caller-saved temporary (`$t8`).
    T8 = 24,
    /// `$25` — caller-saved temporary (`$t9`).
    T9 = 25,
    /// `$28` — global pointer (`$gp`).
    GP = 28,
    /// `$29` — stack pointer (`$sp`).
    SP = 29,
    /// `$30` — frame pointer (`$fp`).
    FP = 30,
    /// `$31` — return address (`$ra`).
    RA = 31,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds() {
        assert_eq!(Reg::new(31), Some(RA));
        assert_eq!(Reg::new(32), None);
        assert_eq!(SP.number(), 29);
    }

    #[test]
    fn display_forms() {
        assert_eq!(V0.to_string(), "$2");
        assert_eq!(RA.to_string(), "$31");
    }
}
