//! Instruction decoding: raw 32-bit words → [`MInsn`].
//!
//! The decoder accepts *canonical* encodings only: a word whose must-be-zero
//! fields (the `rs` of immediate shifts, the `sa` of register ops, the `rt`
//! of `blez`/`bgtz`, …) are nonzero decodes as [`MInsn::Illegal`] carrying
//! the word verbatim. This makes `encode(decode(w)) == w` a total identity
//! and gives the compressor a precise notion of the executable subset.

use crate::insn::MInsn;
use crate::opcode::{funct, op, regimm};
use crate::reg::Reg;

/// Sign-extends the 16-bit immediate as a byte branch offset (field × 4).
fn b_offset(word: u32) -> i32 {
    ((word & 0xffff) as u16 as i16 as i32) << 2
}

/// Decodes one instruction word. Never panics; see the
/// [module docs](self) for the canonicality rules.
///
/// ```
/// use codense_mips::{decode, MInsn, reg::RA};
/// assert_eq!(decode(0x03e0_0008), MInsn::Jr { rs: RA });
/// assert!(matches!(decode(0x4800_0000), MInsn::Illegal(_))); // escape opcode
/// ```
pub fn decode(word: u32) -> MInsn {
    let rs = Reg::from_field(word >> 21);
    let rt = Reg::from_field(word >> 16);
    let rd = Reg::from_field(word >> 11);
    let sa = ((word >> 6) & 0x1f) as u8;
    let imm = (word & 0xffff) as u16;
    let ill = MInsn::Illegal(word);

    match word >> 26 {
        op::SPECIAL => {
            let rs0 = rs.number() == 0;
            let rt0 = rt.number() == 0;
            let rd0 = rd.number() == 0;
            let sa0 = sa == 0;
            match word & 0x3f {
                funct::SLL if rs0 => MInsn::Sll { rd, rt, sa },
                funct::SRL if rs0 => MInsn::Srl { rd, rt, sa },
                funct::SRA if rs0 => MInsn::Sra { rd, rt, sa },
                funct::SLLV if sa0 => MInsn::Sllv { rd, rt, rs },
                funct::SRLV if sa0 => MInsn::Srlv { rd, rt, rs },
                funct::SRAV if sa0 => MInsn::Srav { rd, rt, rs },
                funct::JR if rt0 && rd0 && sa0 => MInsn::Jr { rs },
                funct::JALR if rt0 && sa0 => MInsn::Jalr { rd, rs },
                funct::SYSCALL if word >> 6 == 0 => MInsn::Syscall,
                funct::BREAK if word >> 6 == 0 => MInsn::Break,
                funct::MUL if sa0 => MInsn::Mul { rd, rs, rt },
                funct::DIV if sa0 => MInsn::Div { rd, rs, rt },
                funct::DIVU if sa0 => MInsn::Divu { rd, rs, rt },
                funct::ADDU if sa0 => MInsn::Addu { rd, rs, rt },
                funct::SUBU if sa0 => MInsn::Subu { rd, rs, rt },
                funct::AND if sa0 => MInsn::And { rd, rs, rt },
                funct::OR if sa0 => MInsn::Or { rd, rs, rt },
                funct::XOR if sa0 => MInsn::Xor { rd, rs, rt },
                funct::NOR if sa0 => MInsn::Nor { rd, rs, rt },
                funct::SLT if sa0 => MInsn::Slt { rd, rs, rt },
                funct::SLTU if sa0 => MInsn::Sltu { rd, rs, rt },
                _ => ill,
            }
        }
        op::REGIMM => match (word >> 16) & 0x1f {
            regimm::BLTZ => MInsn::Bltz { rs, offset: b_offset(word) },
            regimm::BGEZ => MInsn::Bgez { rs, offset: b_offset(word) },
            _ => ill,
        },
        op::J => MInsn::J { offset: (((word << 6) as i32) >> 6) << 2 },
        op::JAL => MInsn::Jal { offset: (((word << 6) as i32) >> 6) << 2 },
        op::BEQ => MInsn::Beq { rs, rt, offset: b_offset(word) },
        op::BNE => MInsn::Bne { rs, rt, offset: b_offset(word) },
        op::BLEZ if rt.number() == 0 => MInsn::Blez { rs, offset: b_offset(word) },
        op::BGTZ if rt.number() == 0 => MInsn::Bgtz { rs, offset: b_offset(word) },
        op::ADDIU => MInsn::Addiu { rt, rs, imm: imm as i16 },
        op::SLTI => MInsn::Slti { rt, rs, imm: imm as i16 },
        op::SLTIU => MInsn::Sltiu { rt, rs, imm: imm as i16 },
        op::ANDI => MInsn::Andi { rt, rs, imm },
        op::ORI => MInsn::Ori { rt, rs, imm },
        op::XORI => MInsn::Xori { rt, rs, imm },
        op::LUI if rs.number() == 0 => MInsn::Lui { rt, imm },
        op::LB => MInsn::Lb { rt, base: rs, offset: imm as i16 },
        op::LH => MInsn::Lh { rt, base: rs, offset: imm as i16 },
        op::LW => MInsn::Lw { rt, base: rs, offset: imm as i16 },
        op::LBU => MInsn::Lbu { rt, base: rs, offset: imm as i16 },
        op::LHU => MInsn::Lhu { rt, base: rs, offset: imm as i16 },
        op::SB => MInsn::Sb { rt, base: rs, offset: imm as i16 },
        op::SH => MInsn::Sh { rt, base: rs, offset: imm as i16 },
        op::SW => MInsn::Sw { rt, base: rs, offset: imm as i16 },
        _ => ill,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::reg::*;

    #[test]
    fn word_zero_is_nop() {
        assert_eq!(decode(0), MInsn::Sll { rd: ZERO, rt: ZERO, sa: 0 });
    }

    #[test]
    fn noncanonical_fields_are_illegal() {
        // sll with a nonzero rs field.
        assert_eq!(decode(0x0020_0000), MInsn::Illegal(0x0020_0000));
        // addu with a nonzero sa field.
        let addu = encode(&MInsn::Addu { rd: T0, rs: T0, rt: T1 });
        assert_eq!(decode(addu | 1 << 6), MInsn::Illegal(addu | 1 << 6));
        // jr with a nonzero rd field.
        let jr = encode(&MInsn::Jr { rs: RA });
        assert_eq!(decode(jr | 2 << 11), MInsn::Illegal(jr | 2 << 11));
        // blez with a nonzero rt field.
        let blez = encode(&MInsn::Blez { rs: T0, offset: 8 });
        assert_eq!(decode(blez | 1 << 16), MInsn::Illegal(blez | 1 << 16));
        // lui with a nonzero rs field.
        let lui = encode(&MInsn::Lui { rt: T0, imm: 1 });
        assert_eq!(decode(lui | 1 << 21), MInsn::Illegal(lui | 1 << 21));
        // syscall with a nonzero code field.
        assert_eq!(decode(0x0000_004c), MInsn::Illegal(0x0000_004c));
    }

    #[test]
    fn escape_opcodes_are_illegal() {
        for &o in &crate::opcode::ILLEGAL_PRIMARY {
            let w = o << 26 | 0x0012_3456;
            assert_eq!(decode(w), MInsn::Illegal(w));
        }
    }

    #[test]
    fn jump_offsets_sign_extend() {
        assert_eq!(decode(encode(&MInsn::J { offset: -8 })), MInsn::J { offset: -8 });
        let max = ((1 << 25) - 1) << 2;
        assert_eq!(decode(encode(&MInsn::Jal { offset: max })), MInsn::Jal { offset: max });
        let min = -(1i32 << 25) << 2;
        assert_eq!(decode(encode(&MInsn::J { offset: min })), MInsn::J { offset: min });
    }
}
