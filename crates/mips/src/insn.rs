//! The structured instruction form for the MIPS-like subset.
//!
//! The subset is classic MIPS-I user-level integer code with three
//! documented simplifications that keep the fetch model identical to the
//! PowerPC backend's (see DESIGN.md §13):
//!
//! * **No delay slots.** Branches take effect immediately; the instruction
//!   after a taken branch is not executed.
//! * **Branch displacements are relative to the branch itself**, not to the
//!   delay slot, so the compressor's patch arithmetic is uniform across
//!   backends.
//! * **`j`/`jal` are PC-relative** with a signed 26-bit word displacement
//!   instead of pseudo-absolute region jumps, so they can be patched after
//!   compression exactly like conditional branches.
//!
//! Branch offsets are stored in *bytes* (always a multiple of 4 in an
//! uncompressed program), mirroring `codense_ppc::Insn`.

use crate::reg::Reg;

/// One decoded instruction.
///
/// Word values that do not decode to a *canonical* encoding of the subset —
/// unknown opcodes, but also legal opcodes with nonzero must-be-zero fields —
/// are preserved verbatim as [`MInsn::Illegal`], so
/// `encode(decode(w)) == w` holds for every 32-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants are named for their mnemonics
pub enum MInsn {
    // ---- R-format shifts ----------------------------------------------
    Sll {
        rd: Reg,
        rt: Reg,
        sa: u8,
    },
    Srl {
        rd: Reg,
        rt: Reg,
        sa: u8,
    },
    Sra {
        rd: Reg,
        rt: Reg,
        sa: u8,
    },
    Sllv {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Srlv {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Srav {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },

    // ---- R-format jumps and system ------------------------------------
    Jr {
        rs: Reg,
    },
    Jalr {
        rd: Reg,
        rs: Reg,
    },
    Syscall,
    Break,

    // ---- R-format arithmetic and logic --------------------------------
    Mul {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Div {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Divu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Addu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Subu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    And {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Or {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Xor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Nor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Slt {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sltu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },

    // ---- branches (offset in bytes from the branch itself) -------------
    Bltz {
        rs: Reg,
        offset: i32,
    },
    Bgez {
        rs: Reg,
        offset: i32,
    },
    Beq {
        rs: Reg,
        rt: Reg,
        offset: i32,
    },
    Bne {
        rs: Reg,
        rt: Reg,
        offset: i32,
    },
    Blez {
        rs: Reg,
        offset: i32,
    },
    Bgtz {
        rs: Reg,
        offset: i32,
    },
    J {
        offset: i32,
    },
    Jal {
        offset: i32,
    },

    // ---- I-format arithmetic and logic ---------------------------------
    Addiu {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Slti {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Sltiu {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Andi {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Ori {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Xori {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Lui {
        rt: Reg,
        imm: u16,
    },

    // ---- loads and stores ----------------------------------------------
    Lb {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lh {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lw {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lbu {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lhu {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Sb {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Sh {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Sw {
        rt: Reg,
        base: Reg,
        offset: i16,
    },

    /// Any word without a canonical decoding, preserved verbatim.
    Illegal(u32),
}

impl MInsn {
    /// Returns `true` for every control-transfer instruction (relative
    /// branches, relative jumps, and register-indirect jumps).
    pub fn is_branch(&self) -> bool {
        use MInsn::*;
        matches!(
            self,
            Bltz { .. }
                | Bgez { .. }
                | Beq { .. }
                | Bne { .. }
                | Blez { .. }
                | Bgtz { .. }
                | J { .. }
                | Jal { .. }
                | Jr { .. }
                | Jalr { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{RA, T0, T1};

    #[test]
    fn branch_classification() {
        assert!(MInsn::Beq { rs: T0, rt: T1, offset: 8 }.is_branch());
        assert!(MInsn::J { offset: -16 }.is_branch());
        assert!(MInsn::Jr { rs: RA }.is_branch());
        assert!(MInsn::Jalr { rd: RA, rs: T0 }.is_branch());
        assert!(!MInsn::Syscall.is_branch());
        assert!(!MInsn::Addiu { rt: T0, rs: T0, imm: 1 }.is_branch());
        assert!(!MInsn::Illegal(0xffff_ffff).is_branch());
    }
}
