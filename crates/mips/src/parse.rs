//! Assembly-text parsing: the inverse of [`crate::disasm`].
//!
//! Accepts the disassembler's output syntax — canonical mnemonics and the
//! simplified forms (`nop`, `move`, `li`, `b`, one-operand `jalr`) — so text
//! can round-trip: `parse(disassemble(w)) == decode(w)`.
//!
//! Branch targets are parsed as *absolute byte addresses* (as the
//! disassembler prints them) and require the instruction's own address to
//! recover the relative displacement, hence [`parse_insn`] takes `addr`.

use crate::insn::MInsn;
use crate::reg::Reg;

/// Parse errors, with the offending fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { message: message.into() })
}

fn parse_reg(s: &str) -> Result<Reg, ParseError> {
    let n: u8 = s
        .strip_prefix('$')
        .and_then(|v| v.parse().ok())
        .ok_or(ParseError { message: format!("bad register `{s}`") })?;
    Reg::new(n).ok_or(ParseError { message: format!("register out of range `{s}`") })
}

fn parse_int(s: &str) -> Result<i64, ParseError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| ParseError { message: format!("bad integer `{s}`") })?;
    Ok(if neg { -v } else { v })
}

fn parse_i16(s: &str) -> Result<i16, ParseError> {
    let v = parse_int(s)?;
    i16::try_from(v).map_err(|_| ParseError { message: format!("immediate out of range `{s}`") })
}

fn parse_u16(s: &str) -> Result<u16, ParseError> {
    let v = parse_int(s)?;
    u16::try_from(v).map_err(|_| ParseError { message: format!("immediate out of range `{s}`") })
}

fn parse_sa(s: &str) -> Result<u8, ParseError> {
    let v = parse_int(s)?;
    match u8::try_from(v) {
        Ok(v) if v < 32 => Ok(v),
        _ => err(format!("shift amount out of range `{s}`")),
    }
}

/// Splits `offset($base)` into (offset, base).
fn parse_mem(s: &str) -> Result<(i16, Reg), ParseError> {
    let open = s.find('(').ok_or(ParseError { message: format!("bad memory operand `{s}`") })?;
    let close = s.len() - 1;
    if !s.ends_with(')') || close <= open {
        return err(format!("bad memory operand `{s}`"));
    }
    Ok((parse_i16(&s[..open])?, parse_reg(&s[open + 1..close])?))
}

/// Branch target as printed by the disassembler: an 8-digit (or any) hex
/// address without `0x`.
fn parse_target(s: &str, addr: u32) -> Result<i32, ParseError> {
    let target = u32::from_str_radix(s, 16)
        .map_err(|_| ParseError { message: format!("bad branch target `{s}`") })?;
    Ok(target.wrapping_sub(addr) as i32)
}

/// Parses one instruction of disassembly text located at byte address
/// `addr`.
///
/// # Errors
///
/// Returns a [`ParseError`] for unknown mnemonics, malformed operands, or
/// out-of-range fields.
pub fn parse_insn(text: &str, addr: u32) -> Result<MInsn, ParseError> {
    let text = text.trim();
    let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
    let ops: Vec<&str> = if rest.trim().is_empty() {
        Vec::new()
    } else {
        rest.trim().split(',').map(str::trim).collect()
    };
    let n = |k: usize| -> Result<(), ParseError> {
        if ops.len() == k {
            Ok(())
        } else {
            err(format!("`{mnemonic}` expects {k} operands, got {}", ops.len()))
        }
    };

    macro_rules! shift_imm {
        ($variant:ident) => {{
            n(3)?;
            Ok(MInsn::$variant {
                rd: parse_reg(ops[0])?,
                rt: parse_reg(ops[1])?,
                sa: parse_sa(ops[2])?,
            })
        }};
    }
    macro_rules! shift_var {
        ($variant:ident) => {{
            n(3)?;
            Ok(MInsn::$variant {
                rd: parse_reg(ops[0])?,
                rt: parse_reg(ops[1])?,
                rs: parse_reg(ops[2])?,
            })
        }};
    }
    macro_rules! r_arith {
        ($variant:ident) => {{
            n(3)?;
            Ok(MInsn::$variant {
                rd: parse_reg(ops[0])?,
                rs: parse_reg(ops[1])?,
                rt: parse_reg(ops[2])?,
            })
        }};
    }
    macro_rules! i_signed {
        ($variant:ident) => {{
            n(3)?;
            Ok(MInsn::$variant {
                rt: parse_reg(ops[0])?,
                rs: parse_reg(ops[1])?,
                imm: parse_i16(ops[2])?,
            })
        }};
    }
    macro_rules! i_unsigned {
        ($variant:ident) => {{
            n(3)?;
            Ok(MInsn::$variant {
                rt: parse_reg(ops[0])?,
                rs: parse_reg(ops[1])?,
                imm: parse_u16(ops[2])?,
            })
        }};
    }
    macro_rules! mem_op {
        ($variant:ident) => {{
            n(2)?;
            let (offset, base) = parse_mem(ops[1])?;
            Ok(MInsn::$variant { rt: parse_reg(ops[0])?, base, offset })
        }};
    }
    macro_rules! b_compare {
        ($variant:ident) => {{
            n(3)?;
            Ok(MInsn::$variant {
                rs: parse_reg(ops[0])?,
                rt: parse_reg(ops[1])?,
                offset: parse_target(ops[2], addr)?,
            })
        }};
    }
    macro_rules! b_zero {
        ($variant:ident) => {{
            n(2)?;
            Ok(MInsn::$variant { rs: parse_reg(ops[0])?, offset: parse_target(ops[1], addr)? })
        }};
    }

    match mnemonic {
        "nop" => {
            n(0)?;
            let zero = Reg::new(0).unwrap();
            Ok(MInsn::Sll { rd: zero, rt: zero, sa: 0 })
        }
        "sll" => shift_imm!(Sll),
        "srl" => shift_imm!(Srl),
        "sra" => shift_imm!(Sra),
        "sllv" => shift_var!(Sllv),
        "srlv" => shift_var!(Srlv),
        "srav" => shift_var!(Srav),

        "jr" => {
            n(1)?;
            Ok(MInsn::Jr { rs: parse_reg(ops[0])? })
        }
        "jalr" => match ops.len() {
            1 => Ok(MInsn::Jalr { rd: crate::reg::RA, rs: parse_reg(ops[0])? }),
            2 => Ok(MInsn::Jalr { rd: parse_reg(ops[0])?, rs: parse_reg(ops[1])? }),
            _ => err("`jalr` expects 1–2 operands"),
        },
        "syscall" => {
            n(0)?;
            Ok(MInsn::Syscall)
        }
        "break" => {
            n(0)?;
            Ok(MInsn::Break)
        }

        "mul" => r_arith!(Mul),
        "div" => r_arith!(Div),
        "divu" => r_arith!(Divu),
        "addu" => r_arith!(Addu),
        "subu" => r_arith!(Subu),
        "and" => r_arith!(And),
        "or" => r_arith!(Or),
        "xor" => r_arith!(Xor),
        "nor" => r_arith!(Nor),
        "slt" => r_arith!(Slt),
        "sltu" => r_arith!(Sltu),
        "move" => {
            n(2)?;
            Ok(MInsn::Addu {
                rd: parse_reg(ops[0])?,
                rs: parse_reg(ops[1])?,
                rt: Reg::new(0).unwrap(),
            })
        }

        "bltz" => b_zero!(Bltz),
        "bgez" => b_zero!(Bgez),
        "beq" => b_compare!(Beq),
        "bne" => b_compare!(Bne),
        "blez" => b_zero!(Blez),
        "bgtz" => b_zero!(Bgtz),
        "b" => {
            n(1)?;
            let zero = Reg::new(0).unwrap();
            Ok(MInsn::Beq { rs: zero, rt: zero, offset: parse_target(ops[0], addr)? })
        }
        "j" => {
            n(1)?;
            Ok(MInsn::J { offset: parse_target(ops[0], addr)? })
        }
        "jal" => {
            n(1)?;
            Ok(MInsn::Jal { offset: parse_target(ops[0], addr)? })
        }

        "li" => {
            n(2)?;
            Ok(MInsn::Addiu {
                rt: parse_reg(ops[0])?,
                rs: Reg::new(0).unwrap(),
                imm: parse_i16(ops[1])?,
            })
        }
        "addiu" => i_signed!(Addiu),
        "slti" => i_signed!(Slti),
        "sltiu" => i_signed!(Sltiu),
        "andi" => i_unsigned!(Andi),
        "ori" => i_unsigned!(Ori),
        "xori" => i_unsigned!(Xori),
        "lui" => {
            n(2)?;
            Ok(MInsn::Lui { rt: parse_reg(ops[0])?, imm: parse_u16(ops[1])? })
        }

        "lb" => mem_op!(Lb),
        "lh" => mem_op!(Lh),
        "lw" => mem_op!(Lw),
        "lbu" => mem_op!(Lbu),
        "lhu" => mem_op!(Lhu),
        "sb" => mem_op!(Sb),
        "sh" => mem_op!(Sh),
        "sw" => mem_op!(Sw),

        ".word" => {
            n(1)?;
            let w = parse_int(ops[0])?;
            Ok(MInsn::Illegal(w as u32))
        }
        other => err(format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use crate::encode;
    use crate::reg::*;

    #[test]
    fn parses_common_lines() {
        assert_eq!(
            parse_insn("lw $8,16($29)", 0).unwrap(),
            MInsn::Lw { rt: T0, base: SP, offset: 16 }
        );
        assert_eq!(parse_insn("addu $2,$4,$5", 0).unwrap(), MInsn::Addu { rd: V0, rs: A0, rt: A1 });
        assert_eq!(
            parse_insn("beq $8,$9,00040018", 0x0004_0000).unwrap(),
            MInsn::Beq { rs: T0, rt: T1, offset: 0x18 }
        );
        assert_eq!(parse_insn("jal 000000f8", 0x100).unwrap(), MInsn::Jal { offset: -8 });
        assert_eq!(parse_insn("jr $31", 0).unwrap(), MInsn::Jr { rs: RA });
    }

    #[test]
    fn idioms_parse() {
        assert_eq!(parse_insn("nop", 0).unwrap(), MInsn::Sll { rd: ZERO, rt: ZERO, sa: 0 });
        assert_eq!(parse_insn("li $2,7", 0).unwrap(), MInsn::Addiu { rt: V0, rs: ZERO, imm: 7 });
        assert_eq!(parse_insn("move $4,$2", 0).unwrap(), MInsn::Addu { rd: A0, rs: V0, rt: ZERO });
        assert_eq!(
            parse_insn("b 00000108", 0x100).unwrap(),
            MInsn::Beq { rs: ZERO, rt: ZERO, offset: 8 }
        );
        assert_eq!(parse_insn("jalr $25", 0).unwrap(), MInsn::Jalr { rd: RA, rs: T9 });
        assert_eq!(parse_insn(".word 0x12345678", 0).unwrap(), MInsn::Illegal(0x1234_5678));
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_insn("frobnicate $1,$2", 0).is_err());
        assert!(parse_insn("addiu $8,$9", 0).is_err());
        assert!(parse_insn("lw $8,8[$29]", 0).is_err());
        assert!(parse_insn("addiu $99,$0,1", 0).is_err());
        assert!(parse_insn("addiu $8,$0,99999", 0).is_err());
        assert!(parse_insn("sll $8,$9,32", 0).is_err());
    }

    /// Full-circle: a deterministic spread of legal encodings survives
    /// disassemble → parse → encode.
    #[test]
    fn text_roundtrip_over_generated_code() {
        let mut words: Vec<u32> = Vec::new();
        for i in 0..6000u32 {
            let op = [0u32, 1, 2, 3, 4, 5, 6, 7, 9, 0xa, 0xc, 0xd, 0xf, 0x20, 0x23, 0x28, 0x2b]
                [(i % 17) as usize];
            let w = (op << 26) | (i.wrapping_mul(0x9e37_79b9) & 0x03ff_ffff);
            words.push(w);
        }
        let mut checked = 0;
        for (idx, &w) in words.iter().enumerate() {
            let insn = crate::decode(w);
            if matches!(insn, MInsn::Illegal(_)) {
                continue;
            }
            let addr = (idx as u32) * 4;
            let text = disassemble(w, addr);
            let parsed =
                parse_insn(&text, addr).unwrap_or_else(|e| panic!("`{text}` ({w:#010x}): {e}"));
            assert_eq!(encode(&parsed), w, "`{text}`");
            checked += 1;
        }
        assert!(checked > 2000, "only {checked} words exercised");
    }
}
