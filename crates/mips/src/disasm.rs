//! Disassembly to conventional MIPS assembly text (`lw $8,16($29)`,
//! `beq $8,$9,00040018`, `jr $31`, …).
//!
//! A few simplified mnemonics (`nop`, `move`, `li`, `b`) are produced where
//! the operands match the idiom, mirroring how GNU `objdump` renders MIPS
//! and how the PowerPC disassembler treats its own idioms.

use crate::insn::MInsn;
use crate::reg::Reg;

/// Disassembles an instruction word located at byte address `addr`.
///
/// Branch targets are rendered as absolute 8-digit hex addresses computed
/// from `addr`.
///
/// ```
/// use codense_mips::disasm::disassemble;
/// assert_eq!(disassemble(0x8fa8_0010, 0), "lw $8,16($29)");
/// assert_eq!(disassemble(0x03e0_0008, 0), "jr $31");
/// ```
pub fn disassemble(word: u32, addr: u32) -> String {
    disassemble_insn(&crate::decode(word), addr)
}

/// Disassembles a decoded instruction located at byte address `addr`.
pub fn disassemble_insn(insn: &MInsn, addr: u32) -> String {
    use MInsn::*;
    match *insn {
        Sll { rd, rt, sa } if rd.number() == 0 && rt.number() == 0 && sa == 0 => "nop".into(),
        Sll { rd, rt, sa } => format!("sll {rd},{rt},{sa}"),
        Srl { rd, rt, sa } => format!("srl {rd},{rt},{sa}"),
        Sra { rd, rt, sa } => format!("sra {rd},{rt},{sa}"),
        Sllv { rd, rt, rs } => format!("sllv {rd},{rt},{rs}"),
        Srlv { rd, rt, rs } => format!("srlv {rd},{rt},{rs}"),
        Srav { rd, rt, rs } => format!("srav {rd},{rt},{rs}"),

        Jr { rs } => format!("jr {rs}"),
        Jalr { rd, rs } if rd.number() == 31 => format!("jalr {rs}"),
        Jalr { rd, rs } => format!("jalr {rd},{rs}"),
        Syscall => "syscall".into(),
        Break => "break".into(),

        Mul { rd, rs, rt } => rrr("mul", rd, rs, rt),
        Div { rd, rs, rt } => rrr("div", rd, rs, rt),
        Divu { rd, rs, rt } => rrr("divu", rd, rs, rt),
        Addu { rd, rs, rt } if rt.number() == 0 => format!("move {rd},{rs}"),
        Addu { rd, rs, rt } => rrr("addu", rd, rs, rt),
        Subu { rd, rs, rt } => rrr("subu", rd, rs, rt),
        And { rd, rs, rt } => rrr("and", rd, rs, rt),
        Or { rd, rs, rt } => rrr("or", rd, rs, rt),
        Xor { rd, rs, rt } => rrr("xor", rd, rs, rt),
        Nor { rd, rs, rt } => rrr("nor", rd, rs, rt),
        Slt { rd, rs, rt } => rrr("slt", rd, rs, rt),
        Sltu { rd, rs, rt } => rrr("sltu", rd, rs, rt),

        Bltz { rs, offset } => format!("bltz {rs},{}", target(addr, offset)),
        Bgez { rs, offset } => format!("bgez {rs},{}", target(addr, offset)),
        Beq { rs, rt, offset } if rs.number() == 0 && rt.number() == 0 => {
            format!("b {}", target(addr, offset))
        }
        Beq { rs, rt, offset } => format!("beq {rs},{rt},{}", target(addr, offset)),
        Bne { rs, rt, offset } => format!("bne {rs},{rt},{}", target(addr, offset)),
        Blez { rs, offset } => format!("blez {rs},{}", target(addr, offset)),
        Bgtz { rs, offset } => format!("bgtz {rs},{}", target(addr, offset)),
        J { offset } => format!("j {}", target(addr, offset)),
        Jal { offset } => format!("jal {}", target(addr, offset)),

        Addiu { rt, rs, imm } if rs.number() == 0 => format!("li {rt},{imm}"),
        Addiu { rt, rs, imm } => format!("addiu {rt},{rs},{imm}"),
        Slti { rt, rs, imm } => format!("slti {rt},{rs},{imm}"),
        Sltiu { rt, rs, imm } => format!("sltiu {rt},{rs},{imm}"),
        Andi { rt, rs, imm } => format!("andi {rt},{rs},{imm}"),
        Ori { rt, rs, imm } => format!("ori {rt},{rs},{imm}"),
        Xori { rt, rs, imm } => format!("xori {rt},{rs},{imm}"),
        Lui { rt, imm } => format!("lui {rt},{imm}"),

        Lb { rt, base, offset } => mem("lb", rt, base, offset),
        Lh { rt, base, offset } => mem("lh", rt, base, offset),
        Lw { rt, base, offset } => mem("lw", rt, base, offset),
        Lbu { rt, base, offset } => mem("lbu", rt, base, offset),
        Lhu { rt, base, offset } => mem("lhu", rt, base, offset),
        Sb { rt, base, offset } => mem("sb", rt, base, offset),
        Sh { rt, base, offset } => mem("sh", rt, base, offset),
        Sw { rt, base, offset } => mem("sw", rt, base, offset),

        Illegal(w) => format!(".word 0x{w:08x}"),
    }
}

/// Disassembles a contiguous code region starting at `base`, one line per
/// instruction: `ADDR:  WORD  MNEMONIC ...`.
pub fn dump(words: &[u32], base: u32) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let addr = base + 4 * i as u32;
        out.push_str(&format!("{addr:08x}:  {w:08x}  {}\n", disassemble(w, addr)));
    }
    out
}

fn target(addr: u32, offset: i32) -> String {
    format!("{:08x}", addr.wrapping_add(offset as u32))
}

fn mem(m: &str, rt: Reg, base: Reg, offset: i16) -> String {
    format!("{m} {rt},{offset}({base})")
}

fn rrr(m: &str, a: Reg, b: Reg, c: Reg) -> String {
    format!("{m} {a},{b},{c}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::reg::*;

    fn dis(i: &MInsn, addr: u32) -> String {
        disassemble(encode(i), addr)
    }

    #[test]
    fn common_forms() {
        assert_eq!(dis(&MInsn::Lw { rt: T0, base: SP, offset: 16 }, 0), "lw $8,16($29)");
        assert_eq!(dis(&MInsn::Sw { rt: RA, base: SP, offset: -4 }, 0), "sw $31,-4($29)");
        assert_eq!(dis(&MInsn::Addu { rd: V0, rs: A0, rt: A1 }, 0), "addu $2,$4,$5");
        assert_eq!(dis(&MInsn::Sll { rd: T0, rt: T1, sa: 2 }, 0), "sll $8,$9,2");
        assert_eq!(dis(&MInsn::Lui { rt: AT, imm: 96 }, 0), "lui $1,96");
        assert_eq!(dis(&MInsn::Syscall, 0), "syscall");
    }

    #[test]
    fn idioms() {
        assert_eq!(disassemble(0, 0), "nop");
        assert_eq!(dis(&MInsn::Addiu { rt: V0, rs: ZERO, imm: 7 }, 0), "li $2,7");
        assert_eq!(dis(&MInsn::Addu { rd: A0, rs: V0, rt: ZERO }, 0), "move $4,$2");
        assert_eq!(dis(&MInsn::Beq { rs: ZERO, rt: ZERO, offset: 8 }, 0x100), "b 00000108");
        assert_eq!(dis(&MInsn::Jalr { rd: RA, rs: T9 }, 0), "jalr $25");
        assert_eq!(dis(&MInsn::Illegal(0x0123_4567), 0), ".word 0x01234567");
    }

    #[test]
    fn branch_targets_absolute() {
        assert_eq!(
            dis(&MInsn::Beq { rs: T0, rt: T1, offset: 0x18 }, 0x0004_0000),
            "beq $8,$9,00040018"
        );
        assert_eq!(dis(&MInsn::Jal { offset: -8 }, 0x100), "jal 000000f8");
        assert_eq!(dis(&MInsn::Bltz { rs: S0, offset: -64 }, 0x1000), "bltz $16,00000fc0");
    }

    #[test]
    fn dump_formats_lines() {
        let words = [encode(&MInsn::Addiu { rt: V0, rs: ZERO, imm: 1 }), encode(&MInsn::Syscall)];
        let text = dump(&words, 0x1000);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("00001000:"));
        assert!(lines[0].ends_with("li $2,1"));
        assert!(lines[1].contains("syscall"));
    }
}
