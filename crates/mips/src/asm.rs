//! A small label-resolving assembler for building runnable programs.
//!
//! Instructions are appended through [`Assembler::emit`] or the branch
//! helpers; [`Assembler::finish`] resolves label fixups into PC-relative
//! displacements and returns the final instruction words.
//!
//! ```
//! use codense_mips::asm::Assembler;
//! use codense_mips::insn::MInsn;
//! use codense_mips::reg::{V0, ZERO};
//!
//! # fn main() -> Result<(), codense_mips::asm::AsmError> {
//! let mut a = Assembler::new();
//! a.emit(MInsn::Addiu { rt: V0, rs: ZERO, imm: 10 });
//! a.label("loop");
//! a.emit(MInsn::Addiu { rt: V0, rs: V0, imm: -1 });
//! a.bgtz(V0, "loop");
//! a.emit(MInsn::Syscall);
//! let words = a.finish()?;
//! assert_eq!(words.len(), 4);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::branch::{fits_signed, RelBranchKind};
use crate::encode::encode;
use crate::insn::MInsn;
use crate::reg::Reg;

/// Errors produced by [`Assembler::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// A resolved branch displacement does not fit its field.
    OffsetOutOfRange {
        /// The referenced label.
        label: String,
        /// Index of the branch instruction.
        at: usize,
        /// The displacement in bytes that failed to fit.
        offset: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::OffsetOutOfRange { label, at, offset } => write!(
                f,
                "branch at instruction {at} to `{label}`: displacement {offset} out of range"
            ),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
struct Fixup {
    at: usize,
    label: String,
    /// The branch instruction with a zero displacement; `finish` fills the
    /// offset in. Its variant determines the field width to range-check.
    template: MInsn,
}

fn kind_of(template: &MInsn) -> RelBranchKind {
    match template {
        MInsn::J { .. } | MInsn::Jal { .. } => RelBranchKind::J26,
        _ => RelBranchKind::I16,
    }
}

fn with_offset(template: &MInsn, offset: i32) -> MInsn {
    use MInsn::*;
    match *template {
        Bltz { rs, .. } => Bltz { rs, offset },
        Bgez { rs, .. } => Bgez { rs, offset },
        Beq { rs, rt, .. } => Beq { rs, rt, offset },
        Bne { rs, rt, .. } => Bne { rs, rt, offset },
        Blez { rs, .. } => Blez { rs, offset },
        Bgtz { rs, .. } => Bgtz { rs, offset },
        J { .. } => J { offset },
        Jal { .. } => Jal { offset },
        ref other => panic!("not a relative branch template: {other:?}"),
    }
}

/// An incremental program builder with symbolic branch labels.
///
/// See the [module docs](self) for an example.
#[derive(Debug, Default)]
pub struct Assembler {
    insns: Vec<MInsn>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// The index (instruction count so far) the next instruction will get.
    pub fn here(&self) -> usize {
        self.insns.len()
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (a programming error in the
    /// caller, not an input condition).
    pub fn label(&mut self, name: &str) -> &mut Assembler {
        let prev = self.labels.insert(name.to_owned(), self.insns.len());
        assert!(prev.is_none(), "label `{name}` defined twice");
        self
    }

    /// Returns the position of a defined label, if any.
    pub fn label_pos(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// Appends an instruction.
    pub fn emit(&mut self, insn: MInsn) -> &mut Assembler {
        self.insns.push(insn);
        self
    }

    /// Appends raw pre-encoded words.
    pub fn emit_words(&mut self, words: &[u32]) -> &mut Assembler {
        self.insns.extend(words.iter().map(|&w| crate::decode(w)));
        self
    }

    /// Unconditional jump to `label` (`j`, via the `beq $0,$0` idiom is *not*
    /// used; this emits the 26-bit-field form).
    pub fn j(&mut self, label: &str) -> &mut Assembler {
        self.branch_fixup(label, MInsn::J { offset: 0 })
    }

    /// Jump-and-link (call) to `label`.
    pub fn jal(&mut self, label: &str) -> &mut Assembler {
        self.branch_fixup(label, MInsn::Jal { offset: 0 })
    }

    /// Unconditional short branch to `label` (`beq $0,$0`, 16-bit field).
    pub fn b(&mut self, label: &str) -> &mut Assembler {
        let zero = Reg::new(0).unwrap();
        self.branch_fixup(label, MInsn::Beq { rs: zero, rt: zero, offset: 0 })
    }

    /// Branch to `label` if `rs == rt`.
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Assembler {
        self.branch_fixup(label, MInsn::Beq { rs, rt, offset: 0 })
    }

    /// Branch to `label` if `rs != rt`.
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Assembler {
        self.branch_fixup(label, MInsn::Bne { rs, rt, offset: 0 })
    }

    /// Branch to `label` if `rs <= 0` (signed).
    pub fn blez(&mut self, rs: Reg, label: &str) -> &mut Assembler {
        self.branch_fixup(label, MInsn::Blez { rs, offset: 0 })
    }

    /// Branch to `label` if `rs > 0` (signed).
    pub fn bgtz(&mut self, rs: Reg, label: &str) -> &mut Assembler {
        self.branch_fixup(label, MInsn::Bgtz { rs, offset: 0 })
    }

    /// Branch to `label` if `rs < 0` (signed).
    pub fn bltz(&mut self, rs: Reg, label: &str) -> &mut Assembler {
        self.branch_fixup(label, MInsn::Bltz { rs, offset: 0 })
    }

    /// Branch to `label` if `rs >= 0` (signed).
    pub fn bgez(&mut self, rs: Reg, label: &str) -> &mut Assembler {
        self.branch_fixup(label, MInsn::Bgez { rs, offset: 0 })
    }

    /// Return through `$ra` (`jr $31`).
    pub fn ret(&mut self) -> &mut Assembler {
        self.emit(MInsn::Jr { rs: crate::reg::RA })
    }

    fn branch_fixup(&mut self, label: &str, template: MInsn) -> &mut Assembler {
        self.fixups.push(Fixup { at: self.insns.len(), label: label.to_owned(), template });
        // Placeholder; patched in finish().
        self.insns.push(template);
        self
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Returns `true` if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Resolves all fixups and returns the encoded instruction words.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if a branch references an unknown
    /// label, or [`AsmError::OffsetOutOfRange`] if a resolved displacement
    /// does not fit its field (±128 KiB for conditional branches, ±128 MiB
    /// for `j`/`jal`).
    pub fn finish(mut self) -> Result<Vec<u32>, AsmError> {
        for fix in &self.fixups {
            let &target = self
                .labels
                .get(&fix.label)
                .ok_or_else(|| AsmError::UndefinedLabel(fix.label.clone()))?;
            let offset = (target as i64 - fix.at as i64) * 4;
            // The displacement field holds offset/4, so the byte offset must
            // fit field_bits + 2 signed bits.
            if !fits_signed(offset, kind_of(&fix.template).field_bits() + 2) {
                return Err(AsmError::OffsetOutOfRange {
                    label: fix.label.clone(),
                    at: fix.at,
                    offset,
                });
            }
            self.insns[fix.at] = with_offset(&fix.template, offset as i32);
        }
        Ok(self.insns.iter().map(encode).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::rel_branch_info;
    use crate::reg::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Assembler::new();
        a.j("end");
        a.label("loop");
        a.emit(MInsn::Addiu { rt: V0, rs: V0, imm: 1 });
        a.bne(V0, A0, "loop");
        a.label("end");
        a.emit(MInsn::Syscall);
        let words = a.finish().unwrap();
        assert_eq!(rel_branch_info(words[0]).unwrap().offset, 12);
        assert_eq!(rel_branch_info(words[2]).unwrap().offset, -4);
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Assembler::new();
        a.j("nowhere");
        assert_eq!(a.finish(), Err(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn conditional_out_of_range_errors() {
        let mut a = Assembler::new();
        a.bne(V0, ZERO, "far");
        for _ in 0..40000 {
            a.emit(MInsn::Ori { rt: T0, rs: T0, imm: 0 });
        }
        a.label("far");
        a.emit(MInsn::Syscall);
        match a.finish() {
            Err(AsmError::OffsetOutOfRange { offset, .. }) => assert_eq!(offset, 40001 * 4),
            other => panic!("expected out-of-range, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut a = Assembler::new();
        a.label("x").label("x");
    }

    #[test]
    fn call_sets_link() {
        let mut a = Assembler::new();
        a.jal("f");
        a.label("f");
        a.ret();
        let words = a.finish().unwrap();
        assert!(rel_branch_info(words[0]).unwrap().lk);
        assert_eq!(words[1], crate::encode(&MInsn::Jr { rs: RA }));
    }

    #[test]
    fn short_branch_idiom() {
        let mut a = Assembler::new();
        a.b("end");
        a.label("end");
        a.emit(MInsn::Syscall);
        let words = a.finish().unwrap();
        let info = rel_branch_info(words[0]).unwrap();
        assert_eq!(info.kind, RelBranchKind::I16);
        assert_eq!(info.offset, 4);
    }
}
