//! PC-relative branch field extraction and patching.
//!
//! Mirrors `codense_ppc::branch`: the compressor never compresses
//! PC-relative branches and rewrites their displacement fields after layout
//! at the compressed granularity (§3.2 of the paper). The MIPS-like subset
//! has two relative forms: the 16-bit conditional/REGIMM field and the
//! 26-bit `j`/`jal` field (PC-relative by this backend's documented
//! deviation, see [`crate::insn`]).

pub use codense_isa::fits_signed;

use crate::insn::MInsn;
use crate::opcode::op;

/// Which relative-branch form a word is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelBranchKind {
    /// Conditional branches (`beq`, `bne`, `blez`, `bgtz`, `bltz`, `bgez`):
    /// 16-bit displacement field.
    I16,
    /// Relative jumps (`j`, `jal`): 26-bit displacement field.
    J26,
}

impl RelBranchKind {
    /// Width in bits of the signed displacement field (sign bit included).
    pub const fn field_bits(self) -> u32 {
        match self {
            RelBranchKind::I16 => 16,
            RelBranchKind::J26 => 26,
        }
    }
}

/// A decoded PC-relative branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelBranch {
    /// Encoding form (determines the displacement field width).
    pub kind: RelBranchKind,
    /// Byte displacement from the branch's own address (multiple of 4 in an
    /// uncompressed program).
    pub offset: i32,
    /// Whether the branch writes the return address (`jal`).
    pub lk: bool,
}

/// Extracts relative-branch information from an instruction word.
///
/// Returns `None` for register-indirect jumps (`jr`, `jalr`) and
/// non-branches — they carry no displacement field and are compressible.
///
/// ```
/// use codense_mips::branch::{rel_branch_info, RelBranchKind};
/// let info = rel_branch_info(0x1000_0002).unwrap(); // beq $0,$0,.+8
/// assert_eq!(info.kind, RelBranchKind::I16);
/// assert_eq!(info.offset, 8);
/// ```
pub fn rel_branch_info(word: u32) -> Option<RelBranch> {
    use MInsn::*;
    match crate::decode(word) {
        Bltz { offset, .. }
        | Bgez { offset, .. }
        | Beq { offset, .. }
        | Bne { offset, .. }
        | Blez { offset, .. }
        | Bgtz { offset, .. } => Some(RelBranch { kind: RelBranchKind::I16, offset, lk: false }),
        J { offset } => Some(RelBranch { kind: RelBranchKind::J26, offset, lk: false }),
        Jal { offset } => Some(RelBranch { kind: RelBranchKind::J26, offset, lk: true }),
        _ => None,
    }
}

/// Can a displacement of `offset_nibbles` (4-bit units) be expressed by this
/// branch form when the field is interpreted in `granule_nibbles` units?
pub fn offset_expressible(kind: RelBranchKind, offset_nibbles: i64, granule_nibbles: u32) -> bool {
    debug_assert!(granule_nibbles > 0);
    let g = granule_nibbles as i64;
    offset_nibbles % g == 0 && fits_signed(offset_nibbles / g, kind.field_bits())
}

/// Rewrites the displacement field of a relative branch with a new raw field
/// value (already divided down to the target granularity). All other fields
/// (opcode, `rs`, `rt`) are preserved.
///
/// # Panics
///
/// Panics if `word` is not a relative branch of the given `kind`, or if
/// `units` does not fit the field.
pub fn patch_offset_units(word: u32, kind: RelBranchKind, units: i32) -> u32 {
    assert!(
        fits_signed(units as i64, kind.field_bits()),
        "patched displacement {units} does not fit a {}-bit field",
        kind.field_bits()
    );
    match kind {
        RelBranchKind::I16 => {
            assert!(
                matches!(word >> 26, op::REGIMM | op::BEQ | op::BNE | op::BLEZ | op::BGTZ),
                "not an I16-form branch"
            );
            (word & !0xffff) | (units as u32 & 0xffff)
        }
        RelBranchKind::J26 => {
            assert!(matches!(word >> 26, op::J | op::JAL), "not a J26-form branch");
            (word & !0x03ff_ffff) | (units as u32 & 0x03ff_ffff)
        }
    }
}

/// Reads back the raw displacement field of a patched branch, sign-extended,
/// in field units (the inverse of [`patch_offset_units`]).
pub fn read_offset_units(word: u32, kind: RelBranchKind) -> i32 {
    match kind {
        RelBranchKind::I16 => (word & 0xffff) as u16 as i16 as i32,
        RelBranchKind::J26 => ((word << 6) as i32) >> 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::reg::*;

    #[test]
    fn info_for_forms() {
        let beq = encode(&MInsn::Beq { rs: T0, rt: T1, offset: -64 });
        let i = rel_branch_info(beq).unwrap();
        assert_eq!((i.kind, i.offset, i.lk), (RelBranchKind::I16, -64, false));

        let bgez = encode(&MInsn::Bgez { rs: S0, offset: 128 });
        let i = rel_branch_info(bgez).unwrap();
        assert_eq!((i.kind, i.offset, i.lk), (RelBranchKind::I16, 128, false));

        let jal = encode(&MInsn::Jal { offset: 4096 });
        let i = rel_branch_info(jal).unwrap();
        assert_eq!((i.kind, i.offset, i.lk), (RelBranchKind::J26, 4096, true));

        let jr = encode(&MInsn::Jr { rs: RA });
        assert_eq!(rel_branch_info(jr), None);
        let jalr = encode(&MInsn::Jalr { rd: RA, rs: T9 });
        assert_eq!(rel_branch_info(jalr), None);
        let addiu = encode(&MInsn::Addiu { rt: T0, rs: T0, imm: 1 });
        assert_eq!(rel_branch_info(addiu), None);
    }

    #[test]
    fn expressibility_at_granularities() {
        // 20 KiB displacement = 40960 nibbles.
        let d = 40960i64;
        // 4-byte granule: 40960/8 = 5120 fits 16 bits.
        assert!(offset_expressible(RelBranchKind::I16, d, 8));
        // Nibble granule: 40960 does not fit 16 bits signed.
        assert!(!offset_expressible(RelBranchKind::I16, d, 1));
        // J26 fits everywhere at these sizes.
        assert!(offset_expressible(RelBranchKind::J26, d, 1));
        // Misaligned displacement is inexpressible.
        assert!(!offset_expressible(RelBranchKind::I16, 7, 2));
    }

    #[test]
    fn patch_and_read_roundtrip() {
        let word = encode(&MInsn::Bne { rs: T0, rt: T1, offset: 0 });
        for units in [-32768, -1, 0, 1, 32767] {
            let p = patch_offset_units(word, RelBranchKind::I16, units);
            assert_eq!(read_offset_units(p, RelBranchKind::I16), units);
            // Opcode and registers preserved:
            assert_eq!(p >> 16, word >> 16);
        }
        let word = encode(&MInsn::Jal { offset: 0 });
        for units in [-(1 << 25), -3, 0, 5, (1 << 25) - 1] {
            let p = patch_offset_units(word, RelBranchKind::J26, units);
            assert_eq!(read_offset_units(p, RelBranchKind::J26), units);
            assert_eq!(p >> 26, word >> 26);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn patch_overflow_panics() {
        let word = encode(&MInsn::Beq { rs: ZERO, rt: ZERO, offset: 0 });
        patch_offset_units(word, RelBranchKind::I16, 32768);
    }

    #[test]
    #[should_panic(expected = "not a J26-form branch")]
    fn patch_wrong_kind_panics() {
        let word = encode(&MInsn::Beq { rs: ZERO, rt: ZERO, offset: 0 });
        patch_offset_units(word, RelBranchKind::J26, 0);
    }
}
