//! The [`codense_isa::Isa`] implementation for the MIPS-like backend.
//!
//! Everything here delegates to the crate's own modules ([`crate::branch`],
//! [`crate::opcode`], [`crate::disasm`], [`crate::machine`]); this file only
//! adapts their MIPS-typed signatures to the ISA-neutral trait. The
//! branch-form discriminants are stable: `0` = conditional/REGIMM (16-bit
//! field), `1` = `j`/`jal` (26-bit field).

use codense_isa::{Core, Isa, RelBranch, OVERFLOW_TABLE_HI};

use crate::branch::{self, RelBranchKind};
use crate::insn::MInsn;
use crate::machine::Machine;
use crate::reg::{AT, RA};

/// Discriminant for 16-bit-field conditional branches in [`RelBranch::kind`].
pub const KIND_I16: u8 = 0;
/// Discriminant for 26-bit-field relative jumps in [`RelBranch::kind`].
pub const KIND_J26: u8 = 1;

/// The 32 escape bytes, in escape-index order: each illegal primary opcode
/// `op` contributes the four byte values `op << 2 | 0 ..= op << 2 | 3`
/// (the next two opcode bits spill into the top byte). Mirrors
/// [`crate::opcode::escape_bytes`] as a static table.
pub static ESCAPE_BYTES: [u8; 32] = [
    0x48, 0x49, 0x4a, 0x4b, // primary 0x12
    0x4c, 0x4d, 0x4e, 0x4f, // primary 0x13
    0x58, 0x59, 0x5a, 0x5b, // primary 0x16
    0x5c, 0x5d, 0x5e, 0x5f, // primary 0x17
    0x68, 0x69, 0x6a, 0x6b, // primary 0x1a
    0x6c, 0x6d, 0x6e, 0x6f, // primary 0x1b
    0xc8, 0xc9, 0xca, 0xcb, // primary 0x32
    0xe8, 0xe9, 0xea, 0xeb, // primary 0x3a
];

fn kind_of(kind: u8) -> RelBranchKind {
    match kind {
        KIND_I16 => RelBranchKind::I16,
        KIND_J26 => RelBranchKind::J26,
        _ => panic!("unknown mips branch kind {kind}"),
    }
}

fn kind_code(kind: RelBranchKind) -> u8 {
    match kind {
        RelBranchKind::I16 => KIND_I16,
        RelBranchKind::J26 => KIND_J26,
    }
}

/// The MIPS-like backend, exposed as [`ISA`].
#[derive(Debug)]
pub struct MipsIsa;

/// The one [`MipsIsa`] instance; reference it as `IsaRef(&codense_mips::ISA)`.
pub static ISA: MipsIsa = MipsIsa;

impl Isa for MipsIsa {
    fn name(&self) -> &'static str {
        "mips"
    }

    fn rel_branch_info(&self, word: u32) -> Option<RelBranch> {
        branch::rel_branch_info(word).map(|i| RelBranch {
            kind: kind_code(i.kind),
            offset: i.offset,
            lk: i.lk,
        })
    }

    fn branch_field_bits(&self, kind: u8) -> u32 {
        kind_of(kind).field_bits()
    }

    fn patch_offset_units(&self, word: u32, kind: u8, units: i32) -> u32 {
        branch::patch_offset_units(word, kind_of(kind), units)
    }

    fn read_offset_units(&self, word: u32, kind: u8) -> i32 {
        branch::read_offset_units(word, kind_of(kind))
    }

    fn escape_bytes(&self) -> &'static [u8] {
        &ESCAPE_BYTES
    }

    fn ends_block(&self, word: u32) -> bool {
        let insn = crate::decode(word);
        insn.is_branch() || matches!(insn, MInsn::Syscall)
    }

    fn overflow_expansion(
        &self,
        word: u32,
        slot: u32,
        granule_nibbles: u32,
        insn_nibbles: u32,
    ) -> Option<Vec<u32>> {
        use MInsn::*;
        let info = branch::rel_branch_info(word)?;
        let mut out = Vec::with_capacity(4);
        let dispatch_len = 3u32;
        // Every conditional form has a direct inversion, so (unlike PowerPC's
        // CTR-decrementing bc forms) expansion never fails for this backend.
        let inverted = match crate::decode(word) {
            Beq { rs, rt, .. } => Some(Bne { rs, rt, offset: 0 }),
            Bne { rs, rt, .. } => Some(Beq { rs, rt, offset: 0 }),
            Blez { rs, .. } => Some(Bgtz { rs, offset: 0 }),
            Bgtz { rs, .. } => Some(Blez { rs, offset: 0 }),
            Bltz { rs, .. } => Some(Bgez { rs, offset: 0 }),
            Bgez { rs, .. } => Some(Bltz { rs, offset: 0 }),
            _ => None, // j/jal are unconditional: no skip needed
        };
        if let Some(skip) = inverted {
            let skip_nibbles = (1 + dispatch_len) * insn_nibbles;
            let units = (skip_nibbles / granule_nibbles) as i32;
            out.push(branch::patch_offset_units(crate::encode(&skip), RelBranchKind::I16, units));
        }
        out.push(crate::encode(&Lui { rt: AT, imm: OVERFLOW_TABLE_HI as u16 }));
        out.push(crate::encode(&Lw { rt: AT, base: AT, offset: (slot * 4) as i16 }));
        if info.lk {
            out.push(crate::encode(&Jalr { rd: RA, rs: AT }));
        } else {
            out.push(crate::encode(&Jr { rs: AT }));
        }
        Some(out)
    }

    fn disassemble(&self, word: u32, addr: u32) -> String {
        crate::disasm::disassemble(word, addr)
    }

    fn new_core(&self, mem_bytes: usize) -> Box<dyn Core> {
        Box::new(Machine::new(mem_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;
    use codense_isa::IsaRef;

    #[test]
    fn escape_table_matches_opcode_module() {
        assert_eq!(ESCAPE_BYTES.to_vec(), crate::opcode::escape_bytes());
        let isa = IsaRef(&ISA);
        for (i, &b) in ESCAPE_BYTES.iter().enumerate() {
            assert_eq!(isa.escape_index(b), Some(i as u32));
        }
        assert_eq!(isa.escape_index(0x24), None); // `addiu` opcode byte
                                                  // Escape-set membership of a word's top byte is exactly primary-
                                                  // opcode illegality.
        for top in 0u32..=255 {
            let word = top << 24;
            assert_eq!(
                isa.escape_index(top as u8).is_some(),
                crate::opcode::is_illegal_primary(word >> 26),
            );
        }
    }

    #[test]
    fn trait_delegates_to_branch_module() {
        let isa = IsaRef(&ISA);
        let jal = crate::encode(&MInsn::Jal { offset: -64 });
        let info = isa.rel_branch_info(jal).unwrap();
        assert_eq!((info.kind, info.offset, info.lk), (KIND_J26, -64, true));
        assert_eq!(isa.branch_field_bits(KIND_I16), 16);
        assert_eq!(isa.branch_field_bits(KIND_J26), 26);

        let beq = crate::encode(&MInsn::Beq { rs: T0, rt: T1, offset: 0 });
        for units in [-32768, -1, 0, 1, 32767] {
            let p = isa.patch_offset_units(beq, KIND_I16, units);
            assert_eq!(p, branch::patch_offset_units(beq, RelBranchKind::I16, units));
            assert_eq!(isa.read_offset_units(p, KIND_I16), units);
        }

        assert!(isa.offset_expressible(KIND_I16, 40960, 8));
        assert!(!isa.offset_expressible(KIND_I16, 40960, 1));
        assert!(!isa.offset_expressible(KIND_I16, 7, 2));
    }

    #[test]
    fn ends_block_matches_decode() {
        let isa = IsaRef(&ISA);
        assert!(isa.ends_block(crate::encode(&MInsn::J { offset: 8 })));
        assert!(isa.ends_block(crate::encode(&MInsn::Jr { rs: RA })));
        assert!(isa.ends_block(crate::encode(&MInsn::Beq { rs: T0, rt: T1, offset: 8 })));
        assert!(isa.ends_block(crate::encode(&MInsn::Syscall)));
        assert!(!isa.ends_block(crate::encode(&MInsn::Addiu { rt: T0, rs: T0, imm: 1 })));
        assert!(!isa.ends_block(crate::encode(&MInsn::Break)));
    }

    #[test]
    fn overflow_expansion_shapes() {
        let isa = IsaRef(&ISA);
        // Unconditional jump: 3-word trampoline, no skip.
        let j = crate::encode(&MInsn::J { offset: 0 });
        let seq = isa.overflow_expansion(j, 3, 4, 8).unwrap();
        assert_eq!(seq.len(), 3);
        assert_eq!(crate::decode(seq[0]), MInsn::Lui { rt: AT, imm: OVERFLOW_TABLE_HI as u16 });
        assert_eq!(crate::decode(seq[1]), MInsn::Lw { rt: AT, base: AT, offset: 12 });
        assert_eq!(crate::decode(seq[2]), MInsn::Jr { rs: AT });

        // Linking jump dispatches through jalr so the call still links.
        let jal = crate::encode(&MInsn::Jal { offset: 0 });
        let seq = isa.overflow_expansion(jal, 0, 4, 8).unwrap();
        assert_eq!(crate::decode(seq[2]), MInsn::Jalr { rd: RA, rs: AT });

        // Conditional branch: inverted-condition skip prepended.
        let beq = crate::encode(&MInsn::Beq { rs: T0, rt: T1, offset: 0 });
        let seq = isa.overflow_expansion(beq, 0, 4, 8).unwrap();
        assert_eq!(seq.len(), 4);
        match crate::decode(seq[0]) {
            MInsn::Bne { rs, rt, .. } => {
                assert_eq!(rs, T0);
                assert_eq!(rt, T1);
            }
            other => panic!("expected skip bne, got {other:?}"),
        }
        // Skip distance: (1 + 3) insns × 8 nibbles ÷ 4-nibble granule.
        assert_eq!(isa.read_offset_units(seq[0], KIND_I16), 8);

        // Every conditional form inverts.
        for w in [
            crate::encode(&MInsn::Bne { rs: T0, rt: T1, offset: 0 }),
            crate::encode(&MInsn::Blez { rs: T0, offset: 0 }),
            crate::encode(&MInsn::Bgtz { rs: T0, offset: 0 }),
            crate::encode(&MInsn::Bltz { rs: T0, offset: 0 }),
            crate::encode(&MInsn::Bgez { rs: T0, offset: 0 }),
        ] {
            assert!(isa.overflow_expansion(w, 0, 1, 9).is_some());
        }

        // Non-branches have no expansion.
        assert_eq!(isa.overflow_expansion(crate::encode(&MInsn::Syscall), 0, 4, 8), None);
    }

    #[test]
    fn new_core_runs_mips_semantics() {
        let isa = IsaRef(&ISA);
        let mut core = isa.new_core(4096);
        let li = crate::encode(&MInsn::Addiu { rt: V0, rs: ZERO, imm: 42 });
        core.step_word(li, 0, 8, 8).unwrap();
        assert_eq!(core.gpr(2), 42);
        assert_eq!(core.exit_code(), 42);
        let sys = crate::encode(&MInsn::Syscall);
        assert_eq!(core.step_word(sys, 8, 16, 8).unwrap(), codense_isa::Outcome::Halt);
        assert_eq!(core.flags(), 0);
    }
}
