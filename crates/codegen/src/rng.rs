//! A self-contained deterministic PRNG (SplitMix64).
//!
//! The benchmark generator must produce bit-identical programs forever —
//! the experiment tables in EXPERIMENTS.md are only meaningful if the inputs
//! are stable — so we do not depend on an external RNG crate whose stream
//! might change between versions.

/// SplitMix64 generator (Steele, Lea & Flood; public domain reference
/// constants). Passes BigCrush; more than adequate for workload synthesis.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift reduction; bias is negligible for our n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Picks an index according to integer weights (index of the chosen
    /// weight). Zero-weight entries are never chosen.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "all weights zero");
        let mut x = ((self.next_u64() as u128 * total as u128) >> 64) as u64;
        for (i, &w) in weights.iter().enumerate() {
            if x < w as u64 {
                return i;
            }
            x -= w as u64;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the SplitMix64 paper code.
        let mut r = Rng::new(1234567);
        let first = r.next_u64();
        let mut r2 = Rng::new(1234567);
        assert_eq!(first, r2.next_u64());
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn weighted_respects_zero() {
        let mut r = Rng::new(9);
        for _ in 0..500 {
            let i = r.weighted(&[0, 3, 0, 5]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(11);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
