//! The miniature intermediate representation the synthetic compiler lowers.
//!
//! The IR deliberately mirrors what a syntax-directed translation scheme
//! (SDTS) sees: expressions, assignments, structured control flow, calls and
//! switches. Each construct lowers through a *fixed template* (see
//! [`crate::lower`]), which is precisely the property the paper exploits:
//! "object modules are generated with many common sub-sequences of
//! instructions" (§1.1).

/// Access width of a memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 8-bit (`lbz`/`stb`).
    Byte,
    /// 16-bit (`lhz`/`sth`).
    Half,
    /// 32-bit (`lwz`/`stw`).
    Word,
}

/// A function-local variable, identified by slot index.
///
/// Depending on the function's register pressure a local is assigned either
/// a nonvolatile register or a stack-frame slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Local(pub u16);

/// A program-global variable, identified by index into the synthetic `.data`
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Global(pub u16);

/// Reference to another function in the same program, by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncRef(pub u32);

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the operators themselves
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    And,
    Or,
    Xor,
    /// Shift left by a constant.
    Shl(u8),
    /// Logical shift right by a constant.
    Shr(u8),
    /// Arithmetic shift right by a constant.
    Sar(u8),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the operators themselves
pub enum UnOp {
    Neg,
    Not,
    /// Sign-extend the low byte.
    ExtByte,
    /// Mask to the low byte (the `clrlwi …,24` idiom from the paper's Fig 2).
    MaskByte,
}

/// Comparison operators for conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the operators themselves
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A 16-bit constant (`li`).
    Const(i16),
    /// A constant needing `lis`+`ori`.
    ConstWide(i32),
    /// Read a local.
    Local(Local, Width),
    /// Read a global.
    Global(Global, Width),
    /// Indexed array element `base[index]`, `base` a pointer-typed local.
    Index {
        /// Pointer-typed local holding the array base.
        base: Local,
        /// Element index expression.
        index: Box<Expr>,
        /// Element width (also selects the index scaling shift).
        width: Width,
    },
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Call with up to 4 arguments; yields the return value.
    Call(FuncRef, Vec<Expr>),
}

/// A branch condition: `lhs <op> rhs`, signed or unsigned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cond {
    /// Comparison operator.
    pub op: CmpOp,
    /// Use unsigned (`cmplw`) comparison.
    pub unsigned: bool,
    /// Left operand.
    pub lhs: Expr,
    /// Right operand; a small constant compares via `cmpwi`/`cmplwi`.
    pub rhs: Expr,
    /// CR field the comparison targets (the generator alternates cr0/cr1
    /// the way compilers do when scheduling compares).
    pub crf: u8,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `local = expr`.
    AssignLocal(Local, Expr),
    /// `global = expr` (with the given store width).
    AssignGlobal(Global, Width, Expr),
    /// `base[index] = value`.
    StoreIndex {
        /// Pointer-typed local holding the array base.
        base: Local,
        /// Element index expression.
        index: Expr,
        /// Element width.
        width: Width,
        /// Value to store.
        value: Expr,
    },
    /// `if (cond) { then } else { els }` (`els` may be empty).
    If {
        /// Branch condition.
        cond: Cond,
        /// Taken-branch body.
        then_: Vec<Stmt>,
        /// Else body.
        els: Vec<Stmt>,
    },
    /// `while (cond) { body }`.
    While {
        /// Loop condition.
        cond: Cond,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (local = from; local < to; local++) { body }`.
    For {
        /// Induction variable.
        var: Local,
        /// Inclusive start value.
        from: i16,
        /// Exclusive end value.
        to: i16,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A call whose result is discarded.
    Call(FuncRef, Vec<Expr>),
    /// `switch (scrutinee)` dispatched through a jump table.
    Switch {
        /// Value switched on.
        scrutinee: Expr,
        /// One body per case value `0..cases.len()`.
        cases: Vec<Vec<Stmt>>,
    },
    /// Return, optionally with a value.
    Return(Option<Expr>),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Number of incoming arguments (passed in `r3..`, stored to locals
    /// `0..params` by the prologue template).
    pub params: u16,
    /// Total local slots (including parameter homes).
    pub locals: u16,
    /// Whether this function makes calls (affects prologue/epilogue shape).
    pub body: Vec<Stmt>,
}

/// A whole program: functions plus the size of its global area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// All functions; `FuncRef(i)` refers to `functions[i]`.
    pub functions: Vec<Function>,
    /// Number of global variable slots.
    pub globals: u16,
}

impl Expr {
    /// Depth of the expression tree (a leaf has depth 1). The lowering's
    /// scratch-register discipline supports depth ≤ 4.
    pub fn depth(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::ConstWide(_) | Expr::Local(..) | Expr::Global(..) => 1,
            Expr::Index { index, .. } => 1 + index.depth(),
            Expr::Un(_, e) => e.depth(),
            Expr::Bin(_, a, b) => 1 + a.depth().max(b.depth()),
            Expr::Call(_, args) => 1 + args.iter().map(Expr::depth).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_depth() {
        let leaf = Expr::Const(1);
        assert_eq!(leaf.depth(), 1);
        let sum = Expr::Bin(BinOp::Add, Box::new(leaf.clone()), Box::new(leaf.clone()));
        assert_eq!(sum.depth(), 2);
        let nested = Expr::Bin(BinOp::Mul, Box::new(sum.clone()), Box::new(leaf));
        assert_eq!(nested.depth(), 3);
        assert_eq!(Expr::Un(UnOp::Neg, Box::new(sum)).depth(), 2);
    }
}
