//! SDTS lowering: IR → MIPS object code through fixed instruction
//! templates.
//!
//! The MIPS twin of [`crate::lower`]: every IR construct expands to one
//! fixed instruction pattern parameterized only by register numbers, frame
//! offsets and immediates, so the generated code has the same
//! template-redundancy property (§1.1 of the paper) under a different
//! instruction encoding. Conventions follow GCC's O32 output: `$sp` stack
//! pointer, args in `$4..$7`, return value in `$2`, scratch temporaries
//! drawn from `$t0..$t4`, register locals in `$s0..$s5`, word-by-word
//! `sw`/`lw` save sequences (MIPS has no `stmw`), and `$ra` saved at the
//! top of the frame.
//!
//! The *policy* layer — which locals get registers, what counts as a leaf,
//! the standardized-prologue knob — is shared with the PowerPC lowering, so
//! one IR program produces structurally parallel modules on both ISAs.

use codense_mips::asm::{AsmError, Assembler};
use codense_mips::insn::MInsn;
use codense_mips::reg::{Reg, RA, SP, V0, ZERO};
use codense_obj::{FunctionInfo, JumpTable, ObjectModule};

use crate::ir::{BinOp, CmpOp, Cond, Expr, Function, Program, Stmt, UnOp, Width};
use crate::lower::{function_is_leaf, reg_locals_for, LowerOptions};

/// Scratch registers used by expression evaluation, in allocation order
/// (`$t0..$t4`).
const SCRATCH: [u8; 5] = [8, 9, 10, 11, 12];

/// Callee-saved registers assignable to locals, in allocation order
/// (`$s0..$s5`).
const REG_POOL: [u8; 6] = [16, 17, 18, 19, 20, 21];

/// Synthetic high halves of the `.data` addresses used by global accesses
/// and jump tables — the same synthetic address space as the PowerPC
/// lowering, so the data-side layout contract is ISA-independent.
const GLOBAL_HI: u16 = 0x0040;
const TABLE_HI: u16 = 0x0050;

/// Where a local variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Place {
    /// In a callee-saved register.
    Reg(Reg),
    /// In the stack frame at the given offset from `$sp`.
    Frame(i16),
}

/// Lowers a whole [`Program`] to a MIPS [`ObjectModule`].
///
/// # Errors
///
/// Returns an [`AsmError`] if a branch displacement overflows (which only
/// happens for absurdly large generated functions).
///
/// # Panics
///
/// Panics if the IR violates the lowering contract: expression depth beyond
/// the scratch pool, calls nested inside live expressions, or references to
/// out-of-range locals/functions.
pub fn lower_program_mips(program: &Program) -> Result<ObjectModule, AsmError> {
    lower_program_mips_with(program, LowerOptions::default())
}

/// Like [`lower_program_mips`], with explicit policy knobs.
///
/// # Errors
///
/// Returns an [`AsmError`] if a branch displacement overflows.
pub fn lower_program_mips_with(
    program: &Program,
    options: LowerOptions,
) -> Result<ObjectModule, AsmError> {
    let mut lw = Lowerer {
        asm: Assembler::new(),
        label_counter: 0,
        functions: Vec::with_capacity(program.functions.len()),
        tables: Vec::new(),
        options,
    };
    if options.entry_stub {
        lw.emit_entry_stub();
    }
    for (i, func) in program.functions.iter().enumerate() {
        lw.lower_function(i, func);
    }
    let tables: Vec<JumpTable> = lw
        .tables
        .iter()
        .map(|labels| JumpTable {
            targets: labels
                .iter()
                .map(|l| lw.asm.label_pos(l).expect("case label emitted"))
                .collect(),
        })
        .collect();
    let mut module = ObjectModule::new(program.name.clone());
    module.functions = lw.functions;
    module.jump_tables = tables;
    module.code = lw.asm.finish()?;
    Ok(module)
}

struct Lowerer {
    asm: Assembler,
    label_counter: usize,
    functions: Vec<FunctionInfo>,
    /// Pending jump tables as vectors of case-label names.
    tables: Vec<Vec<String>>,
    options: LowerOptions,
}

/// Per-function lowering context.
struct FnCtx {
    places: Vec<Place>,
    epilogue: String,
    /// Scratch registers currently holding live values.
    live: u8,
    leaf: bool,
}

impl Lowerer {
    fn fresh(&mut self, stem: &str) -> String {
        self.label_counter += 1;
        format!("{stem}{}", self.label_counter)
    }

    /// The runnable-module entry stub: call the root function, then halt
    /// with its return value (already in `$v0`, the exit register) as the
    /// exit code. Mirrors the PowerPC stub.
    fn emit_entry_stub(&mut self) {
        let start = self.asm.here();
        self.asm.jal("F0");
        self.asm.emit(MInsn::Syscall);
        let end = self.asm.here();
        self.functions.push(FunctionInfo {
            name: "__start".to_string(),
            start,
            end,
            prologue_len: 0,
            epilogues: Vec::new(),
        });
    }

    fn lower_function(&mut self, index: usize, func: &Function) {
        let std_pe = self.options.standardize_prologues;
        // Same policy layer as the PowerPC lowering: standardized prologues
        // save `$ra` and the full pool into one fixed-size frame.
        let leaf = function_is_leaf(func) && !std_pe;
        let nreg = (func.locals as usize).min(REG_POOL.len()).min(reg_locals_for(func));
        let nstack = func.locals as usize - nreg;

        // Frame layout (offsets from `$sp`):
        //   [0..8 reserved][8 + 4i: stack local i][save area][$ra @ frame-4]
        // The `$ra` slot is always reserved so save-area offsets are uniform
        // across leaf and non-leaf functions.
        let save_n = if std_pe { REG_POOL.len() } else { nreg };
        let raw = 8 + 4 * nstack as i16 + 4 * save_n as i16 + 4;
        let frame = if std_pe { 112 } else { (raw + 15) & !15 };
        debug_assert!(raw <= frame, "fixed frame too small for locals");

        let places: Vec<Place> = (0..func.locals as usize)
            .map(|i| {
                if i < nreg {
                    Place::Reg(Reg::new(REG_POOL[i]).unwrap())
                } else {
                    Place::Frame(8 + 4 * (i - nreg) as i16)
                }
            })
            .collect();

        let start = self.asm.here();
        self.asm.label(&format!("F{index}"));

        // --- prologue template ------------------------------------------
        self.asm.emit(MInsn::Addiu { rt: SP, rs: SP, imm: -frame });
        if !leaf {
            self.asm.emit(MInsn::Sw { rt: RA, base: SP, offset: frame - 4 });
        }
        for (k, &r) in REG_POOL.iter().enumerate().take(save_n) {
            let rs = Reg::new(r).unwrap();
            self.asm.emit(MInsn::Sw { rt: rs, base: SP, offset: frame - 8 - 4 * k as i16 });
        }
        // Home incoming parameters.
        for p in 0..func.params.min(4) {
            let arg = Reg::new(4 + p as u8).unwrap();
            match places[p as usize] {
                Place::Reg(r) => {
                    self.asm.emit(MInsn::Addu { rd: r, rs: arg, rt: ZERO });
                }
                Place::Frame(off) => {
                    self.asm.emit(MInsn::Sw { rt: arg, base: SP, offset: off });
                }
            }
        }
        let prologue_len = self.asm.here() - start;

        let mut ctx = FnCtx { places, epilogue: self.fresh("E"), live: 0, leaf };

        for stmt in &func.body {
            self.stmt(&mut ctx, stmt);
        }

        // --- epilogue template ------------------------------------------
        let epi_start = self.asm.here();
        let epilogue = ctx.epilogue.clone();
        self.asm.label(&epilogue);
        for (k, &r) in REG_POOL.iter().enumerate().take(save_n) {
            let rt = Reg::new(r).unwrap();
            self.asm.emit(MInsn::Lw { rt, base: SP, offset: frame - 8 - 4 * k as i16 });
        }
        if !leaf {
            self.asm.emit(MInsn::Lw { rt: RA, base: SP, offset: frame - 4 });
        }
        self.asm.emit(MInsn::Addiu { rt: SP, rs: SP, imm: frame });
        self.asm.ret();
        let end = self.asm.here();

        self.functions.push(FunctionInfo {
            name: func.name.clone(),
            start,
            end,
            prologue_len,
            epilogues: std::iter::once(epi_start..end).collect(),
        });
    }

    // ---- expressions ----------------------------------------------------

    /// Allocates the next scratch register.
    fn alloc(&mut self, ctx: &mut FnCtx) -> Reg {
        assert!((ctx.live as usize) < SCRATCH.len(), "expression too deep for scratch pool");
        let r = Reg::new(SCRATCH[ctx.live as usize]).unwrap();
        ctx.live += 1;
        r
    }

    fn free(&mut self, ctx: &mut FnCtx, n: u8) {
        ctx.live -= n;
    }

    /// Evaluates `e`, returning the register holding the result. Register
    /// locals are returned in place (no copy); all other results occupy a
    /// newly allocated scratch register.
    fn eval(&mut self, ctx: &mut FnCtx, e: &Expr) -> (Reg, u8) {
        match e {
            Expr::Local(l, Width::Word) => {
                if let Place::Reg(r) = ctx.places[l.0 as usize] {
                    return (r, 0);
                }
                let d = self.alloc(ctx);
                let off = frame_off(ctx, *l);
                self.asm.emit(MInsn::Lw { rt: d, base: SP, offset: off });
                (d, 1)
            }
            Expr::Local(l, w) => {
                let d = self.alloc(ctx);
                match ctx.places[l.0 as usize] {
                    Place::Reg(r) => {
                        // Sub-word read of a register local: mask template.
                        let imm = if *w == Width::Byte { 0x00ff } else { 0xffff };
                        self.asm.emit(MInsn::Andi { rt: d, rs: r, imm });
                    }
                    Place::Frame(off) => {
                        match w {
                            Width::Byte => {
                                self.asm.emit(MInsn::Lbu { rt: d, base: SP, offset: off })
                            }
                            Width::Half => {
                                self.asm.emit(MInsn::Lhu { rt: d, base: SP, offset: off })
                            }
                            Width::Word => unreachable!(),
                        };
                    }
                }
                (d, 1)
            }
            Expr::Const(c) => {
                let d = self.alloc(ctx);
                self.asm.emit(MInsn::Addiu { rt: d, rs: ZERO, imm: *c });
                (d, 1)
            }
            Expr::ConstWide(c) => {
                let d = self.alloc(ctx);
                self.asm.emit(MInsn::Lui { rt: d, imm: (*c >> 16) as u16 });
                self.asm.emit(MInsn::Ori { rt: d, rs: d, imm: *c as u16 });
                (d, 1)
            }
            Expr::Global(g, w) => {
                let d = self.alloc(ctx);
                self.asm.emit(MInsn::Lui { rt: d, imm: GLOBAL_HI });
                let off = 4 * g.0 as i16;
                match w {
                    Width::Byte => self.asm.emit(MInsn::Lbu { rt: d, base: d, offset: off }),
                    Width::Half => self.asm.emit(MInsn::Lhu { rt: d, base: d, offset: off }),
                    Width::Word => self.asm.emit(MInsn::Lw { rt: d, base: d, offset: off }),
                };
                (d, 1)
            }
            Expr::Index { base, index, width } => {
                let (b, b_owned) = self.base_reg(ctx, *base);
                let (i0, i_owned0) = self.eval(ctx, index);
                let (i, i_owned) = self.scale_index(ctx, i0, i_owned0, *width);
                // Reuse the earliest owned scratch as the destination so the
                // allocation stack stays LIFO; allocate only if neither
                // operand owns one. MIPS has no indexed loads, so the address
                // is summed explicitly.
                let total = b_owned + i_owned;
                let d = if b_owned > 0 {
                    b
                } else if i_owned > 0 {
                    i
                } else {
                    self.alloc(ctx)
                };
                self.asm.emit(MInsn::Addu { rd: d, rs: b, rt: i });
                match width {
                    Width::Byte => self.asm.emit(MInsn::Lbu { rt: d, base: d, offset: 0 }),
                    Width::Half => self.asm.emit(MInsn::Lhu { rt: d, base: d, offset: 0 }),
                    Width::Word => self.asm.emit(MInsn::Lw { rt: d, base: d, offset: 0 }),
                };
                if total == 2 {
                    self.free(ctx, 1);
                }
                (d, 1)
            }
            Expr::Un(op, inner) => {
                let (s, owned) = self.eval(ctx, inner);
                let d = if owned > 0 { s } else { self.alloc(ctx) };
                match op {
                    UnOp::Neg => self.asm.emit(MInsn::Subu { rd: d, rs: ZERO, rt: s }),
                    UnOp::Not => self.asm.emit(MInsn::Nor { rd: d, rs: s, rt: s }),
                    UnOp::ExtByte => {
                        // Sign-extend a byte: shift-pair template.
                        self.asm.emit(MInsn::Sll { rd: d, rt: s, sa: 24 });
                        self.asm.emit(MInsn::Sra { rd: d, rt: d, sa: 24 })
                    }
                    UnOp::MaskByte => self.asm.emit(MInsn::Andi { rt: d, rs: s, imm: 0x00ff }),
                };
                (d, 1.max(owned))
            }
            Expr::Bin(op, a, b) => self.bin(ctx, *op, a, b),
            Expr::Call(f, args) => {
                assert_eq!(ctx.live, 0, "call nested inside a live expression");
                assert!(!ctx.leaf, "call lowered in a function marked leaf");
                self.emit_call(ctx, f.0, args);
                let d = self.alloc(ctx);
                self.asm.emit(MInsn::Addu { rd: d, rs: V0, rt: ZERO });
                (d, 1)
            }
        }
    }

    fn base_reg(&mut self, ctx: &mut FnCtx, l: crate::ir::Local) -> (Reg, u8) {
        match ctx.places[l.0 as usize] {
            Place::Reg(r) => (r, 0),
            Place::Frame(off) => {
                let d = self.alloc(ctx);
                self.asm.emit(MInsn::Lw { rt: d, base: SP, offset: off });
                (d, 1)
            }
        }
    }

    /// Applies the element-size scaling template to an index value,
    /// returning the register holding the scaled index and how many scratch
    /// registers it now owns.
    fn scale_index(&mut self, ctx: &mut FnCtx, i: Reg, owned: u8, w: Width) -> (Reg, u8) {
        let sh = match w {
            Width::Byte => return (i, owned),
            Width::Half => 1,
            Width::Word => 2,
        };
        let d = if owned > 0 { i } else { self.alloc(ctx) };
        self.asm.emit(MInsn::Sll { rd: d, rt: i, sa: sh });
        (d, 1)
    }

    fn bin(&mut self, ctx: &mut FnCtx, op: BinOp, a: &Expr, b: &Expr) -> (Reg, u8) {
        // Immediate-operand template specializations, as a compiler would
        // select (`addiu`, `andi`, `ori`, `xori`). MIPS has no
        // multiply-immediate, so `Mul` by a constant falls through to the
        // general path, which materializes the constant first.
        if let Expr::Const(c) = b {
            let specialized =
                matches!(op, BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor);
            if specialized {
                let (s, owned) = self.eval(ctx, a);
                let d = if owned > 0 { s } else { self.alloc(ctx) };
                match op {
                    BinOp::Add => self.asm.emit(MInsn::Addiu { rt: d, rs: s, imm: *c }),
                    BinOp::Sub => {
                        self.asm.emit(MInsn::Addiu { rt: d, rs: s, imm: c.wrapping_neg() })
                    }
                    BinOp::And => self.asm.emit(MInsn::Andi { rt: d, rs: s, imm: *c as u16 }),
                    BinOp::Or => self.asm.emit(MInsn::Ori { rt: d, rs: s, imm: *c as u16 }),
                    BinOp::Xor => self.asm.emit(MInsn::Xori { rt: d, rs: s, imm: *c as u16 }),
                    _ => unreachable!(),
                };
                return (d, 1.max(owned));
            }
        }
        match op {
            BinOp::Shl(c) => {
                let (s, owned) = self.eval(ctx, a);
                let d = if owned > 0 { s } else { self.alloc(ctx) };
                self.asm.emit(MInsn::Sll { rd: d, rt: s, sa: c });
                return (d, 1.max(owned));
            }
            BinOp::Shr(c) => {
                let (s, owned) = self.eval(ctx, a);
                let d = if owned > 0 { s } else { self.alloc(ctx) };
                self.asm.emit(MInsn::Srl { rd: d, rt: s, sa: c });
                return (d, 1.max(owned));
            }
            BinOp::Sar(c) => {
                let (s, owned) = self.eval(ctx, a);
                let d = if owned > 0 { s } else { self.alloc(ctx) };
                self.asm.emit(MInsn::Sra { rd: d, rt: s, sa: c });
                return (d, 1.max(owned));
            }
            _ => {}
        }
        let (ra_, a_owned) = self.eval(ctx, a);
        let (rb_, b_owned) = self.eval(ctx, b);
        let d = if a_owned > 0 {
            ra_
        } else if b_owned > 0 {
            rb_
        } else {
            self.alloc(ctx)
        };
        match op {
            BinOp::Add => self.asm.emit(MInsn::Addu { rd: d, rs: ra_, rt: rb_ }),
            BinOp::Sub => self.asm.emit(MInsn::Subu { rd: d, rs: ra_, rt: rb_ }),
            BinOp::Mul => self.asm.emit(MInsn::Mul { rd: d, rs: ra_, rt: rb_ }),
            BinOp::Div => self.asm.emit(MInsn::Div { rd: d, rs: ra_, rt: rb_ }),
            BinOp::And => self.asm.emit(MInsn::And { rd: d, rs: ra_, rt: rb_ }),
            BinOp::Or => self.asm.emit(MInsn::Or { rd: d, rs: ra_, rt: rb_ }),
            BinOp::Xor => self.asm.emit(MInsn::Xor { rd: d, rs: ra_, rt: rb_ }),
            BinOp::Shl(_) | BinOp::Shr(_) | BinOp::Sar(_) => unreachable!(),
        };
        // Free whichever operand scratches are no longer the result.
        let total = a_owned + b_owned;
        if total == 2 {
            self.free(ctx, 1);
            (d, 1)
        } else {
            (d, total.max(1))
        }
    }

    fn emit_call(&mut self, ctx: &mut FnCtx, callee: u32, args: &[Expr]) {
        assert!(args.len() <= 4, "at most 4 register arguments");
        for (i, arg) in args.iter().enumerate() {
            let (s, owned) = self.eval(ctx, arg);
            let dst = Reg::new(4 + i as u8).unwrap();
            self.asm.emit(MInsn::Addu { rd: dst, rs: s, rt: ZERO });
            self.free(ctx, owned);
        }
        self.asm.jal(&format!("F{callee}"));
    }

    // ---- statements -------------------------------------------------------

    fn stmt(&mut self, ctx: &mut FnCtx, s: &Stmt) {
        debug_assert_eq!(ctx.live, 0, "scratches leaked between statements");
        match s {
            Stmt::AssignLocal(l, e) => {
                let (v, owned) = self.eval(ctx, e);
                match ctx.places[l.0 as usize] {
                    Place::Reg(r) => {
                        if r != v {
                            self.asm.emit(MInsn::Addu { rd: r, rs: v, rt: ZERO });
                        }
                    }
                    Place::Frame(off) => {
                        self.asm.emit(MInsn::Sw { rt: v, base: SP, offset: off });
                    }
                }
                self.free(ctx, owned);
            }
            Stmt::AssignGlobal(g, w, e) => {
                let (v, owned) = self.eval(ctx, e);
                let a = self.alloc(ctx);
                self.asm.emit(MInsn::Lui { rt: a, imm: GLOBAL_HI });
                let off = 4 * g.0 as i16;
                match w {
                    Width::Byte => self.asm.emit(MInsn::Sb { rt: v, base: a, offset: off }),
                    Width::Half => self.asm.emit(MInsn::Sh { rt: v, base: a, offset: off }),
                    Width::Word => self.asm.emit(MInsn::Sw { rt: v, base: a, offset: off }),
                };
                self.free(ctx, owned + 1);
            }
            Stmt::StoreIndex { base, index, width, value } => {
                let (v, v_owned) = self.eval(ctx, value);
                let (b, b_owned) = self.base_reg(ctx, *base);
                let (i0, i_owned0) = self.eval(ctx, index);
                let (i, i_owned) = self.scale_index(ctx, i0, i_owned0, *width);
                // No indexed stores either: sum the address into a scratch
                // (reusing an operand's if one is owned — `addu` reads both
                // sources before writing).
                let (addr, extra) = if i_owned > 0 {
                    (i, 0)
                } else if b_owned > 0 {
                    (b, 0)
                } else {
                    (self.alloc(ctx), 1)
                };
                self.asm.emit(MInsn::Addu { rd: addr, rs: b, rt: i });
                match width {
                    Width::Byte => self.asm.emit(MInsn::Sb { rt: v, base: addr, offset: 0 }),
                    Width::Half => self.asm.emit(MInsn::Sh { rt: v, base: addr, offset: 0 }),
                    Width::Word => self.asm.emit(MInsn::Sw { rt: v, base: addr, offset: 0 }),
                };
                self.free(ctx, v_owned + b_owned + i_owned + extra);
            }
            Stmt::If { cond, then_, els } => {
                let l_else = self.fresh("L");
                let l_end = self.fresh("L");
                self.cond_branch(ctx, cond, false, if els.is_empty() { &l_end } else { &l_else });
                for st in then_ {
                    self.stmt(ctx, st);
                }
                if !els.is_empty() {
                    self.asm.j(&l_end);
                    self.asm.label(&l_else);
                    for st in els {
                        self.stmt(ctx, st);
                    }
                }
                self.asm.label(&l_end);
            }
            Stmt::While { cond, body } => {
                let l_head = self.fresh("L");
                let l_end = self.fresh("L");
                self.asm.label(&l_head);
                self.cond_branch(ctx, cond, false, &l_end);
                for st in body {
                    self.stmt(ctx, st);
                }
                self.asm.j(&l_head);
                self.asm.label(&l_end);
            }
            Stmt::For { var, from, to, body } => {
                // Bottom-tested loop with entry guard jump (GCC shape).
                let l_body = self.fresh("L");
                let l_test = self.fresh("L");
                self.stmt(ctx, &Stmt::AssignLocal(*var, Expr::Const(*from)));
                self.asm.j(&l_test);
                self.asm.label(&l_body);
                for st in body {
                    self.stmt(ctx, st);
                }
                // var += 1
                self.stmt(
                    ctx,
                    &Stmt::AssignLocal(
                        *var,
                        Expr::Bin(
                            BinOp::Add,
                            Box::new(Expr::Local(*var, Width::Word)),
                            Box::new(Expr::Const(1)),
                        ),
                    ),
                );
                self.asm.label(&l_test);
                let cond = Cond {
                    op: CmpOp::Lt,
                    unsigned: false,
                    lhs: Expr::Local(*var, Width::Word),
                    rhs: Expr::Const(*to),
                    crf: 0,
                };
                self.cond_branch(ctx, &cond, true, &l_body);
            }
            Stmt::Call(f, args) => {
                self.emit_call(ctx, f.0, args);
            }
            Stmt::Switch { scrutinee, cases } => {
                self.lower_switch(ctx, scrutinee, cases);
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    let (v, owned) = self.eval(ctx, e);
                    if v != V0 {
                        self.asm.emit(MInsn::Addu { rd: V0, rs: v, rt: ZERO });
                    }
                    self.free(ctx, owned);
                }
                let epilogue = ctx.epilogue.clone();
                self.asm.j(&epilogue);
            }
        }
        debug_assert_eq!(ctx.live, 0, "scratches leaked by statement");
    }

    fn lower_switch(&mut self, ctx: &mut FnCtx, scrutinee: &Expr, cases: &[Vec<Stmt>]) {
        let l_end = self.fresh("L");
        let case_labels: Vec<String> = (0..cases.len()).map(|_| self.fresh("C")).collect();

        let (s, owned) = self.eval(ctx, scrutinee);
        // Bounds check: unsigned compare against the case count through a
        // dedicated scratch (MIPS compares materialize a boolean).
        let t = self.alloc(ctx);
        self.asm.emit(MInsn::Sltiu { rt: t, rs: s, imm: cases.len() as i16 });
        self.asm.beq(t, ZERO, &l_end);
        // Scale and dispatch through the jump table; `t` is dead after the
        // bounds branch and carries the scaled index.
        self.asm.emit(MInsn::Sll { rd: t, rt: s, sa: 2 });
        let a = if owned > 0 { s } else { self.alloc(ctx) };
        let table_id = self.tables.len() as i16;
        self.asm.emit(MInsn::Lui { rt: a, imm: TABLE_HI });
        self.asm.emit(MInsn::Addiu { rt: a, rs: a, imm: table_id * 64 });
        self.asm.emit(MInsn::Addu { rd: a, rs: a, rt: t });
        self.asm.emit(MInsn::Lw { rt: a, base: a, offset: 0 });
        self.asm.emit(MInsn::Jr { rs: a });
        self.free(ctx, owned.max(1) + 1);

        self.tables.push(case_labels.clone());
        for (label, body) in case_labels.iter().zip(cases) {
            self.asm.label(label);
            for st in body {
                self.stmt(ctx, st);
            }
            self.asm.j(&l_end);
        }
        self.asm.label(&l_end);
    }

    /// Evaluates a condition and emits a conditional branch to `label`,
    /// taken when the condition equals `sense`.
    ///
    /// MIPS has no condition register: equality tests branch directly on the
    /// operands (`beq`/`bne`), and ordered tests materialize a boolean with
    /// `slt`-family templates, then branch on it against `$0`.
    fn cond_branch(&mut self, ctx: &mut FnCtx, cond: &Cond, sense: bool, label: &str) {
        let (a, a_owned) = self.eval(ctx, &cond.lhs);
        // Normalize to Eq / Lt (plus an operand swap for Gt/Le).
        let (op, swap) = match cond.op {
            CmpOp::Eq => (CmpOp::Eq, false),
            CmpOp::Ne => (CmpOp::Ne, false),
            CmpOp::Lt => (CmpOp::Lt, false),
            CmpOp::Ge => (CmpOp::Ge, false),
            CmpOp::Gt => (CmpOp::Lt, true),
            CmpOp::Le => (CmpOp::Ge, true),
        };
        if matches!(op, CmpOp::Eq | CmpOp::Ne) {
            let branch_eq = (op == CmpOp::Eq) == sense;
            if matches!(cond.rhs, Expr::Const(0)) {
                self.free(ctx, a_owned);
                if branch_eq {
                    self.asm.beq(a, ZERO, label);
                } else {
                    self.asm.bne(a, ZERO, label);
                }
            } else {
                // Nonzero constants are materialized by `eval`'s Const arm.
                let (b, b_owned) = self.eval(ctx, &cond.rhs);
                self.free(ctx, a_owned + b_owned);
                if branch_eq {
                    self.asm.beq(a, b, label);
                } else {
                    self.asm.bne(a, b, label);
                }
            }
            return;
        }
        // Ordered: t = (x < y), branch on t != 0 (Lt) or t == 0 (Ge).
        let branch_ne = (op == CmpOp::Lt) == sense;
        if !swap {
            if let Expr::Const(c) = cond.rhs {
                let t = if a_owned > 0 { a } else { self.alloc(ctx) };
                if cond.unsigned {
                    self.asm.emit(MInsn::Sltiu { rt: t, rs: a, imm: c });
                } else {
                    self.asm.emit(MInsn::Slti { rt: t, rs: a, imm: c });
                }
                self.free(ctx, a_owned.max(1));
                if branch_ne {
                    self.asm.bne(t, ZERO, label);
                } else {
                    self.asm.beq(t, ZERO, label);
                }
                return;
            }
        }
        let (b, b_owned) = self.eval(ctx, &cond.rhs);
        let (x, y) = if swap { (b, a) } else { (a, b) };
        let t = if a_owned > 0 {
            a
        } else if b_owned > 0 {
            b
        } else {
            self.alloc(ctx)
        };
        if cond.unsigned {
            self.asm.emit(MInsn::Sltu { rd: t, rs: x, rt: y });
        } else {
            self.asm.emit(MInsn::Slt { rd: t, rs: x, rt: y });
        }
        self.free(ctx, (a_owned + b_owned).max(1));
        if branch_ne {
            self.asm.bne(t, ZERO, label);
        } else {
            self.asm.beq(t, ZERO, label);
        }
    }
}

fn frame_off(ctx: &FnCtx, l: crate::ir::Local) -> i16 {
    match ctx.places[l.0 as usize] {
        Place::Frame(off) => off,
        Place::Reg(_) => unreachable!("frame_off on register local"),
    }
}
