#![warn(missing_docs)]

//! A deterministic, SDTS-style synthetic compiler producing PowerPC and
//! MIPS object modules — the reproduction's stand-in for SPEC CINT95
//! compiled with GCC -O2.
//!
//! The paper's compression method exploits a structural property of compiled
//! code: compilers emit instructions from a fixed set of templates
//! (syntax-directed translation), so "object modules are generated with many
//! common sub-sequences of instructions" (§1.1). This crate reproduces that
//! property from first principles:
//!
//! * [`ir`] — a miniature statement/expression IR,
//! * [`generate`] — a seeded random program builder with per-benchmark
//!   [`profile::BenchProfile`]s that mirror the scale ordering and character
//!   of the eight SPEC CINT95 programs,
//! * [`lower`] — template-based PowerPC lowering with GCC-like conventions
//!   (standard prologue/epilogue shapes, `stmw`/`lmw` register saves,
//!   argument registers, scratch-register discipline, jump-table switches),
//! * [`lower_mips`] — the MIPS twin: the same IR through O32-style
//!   templates, sharing the register-allocation and leaf policies so one
//!   program yields structurally parallel modules on both ISAs.
//!
//! Everything is deterministic: the same profile always yields the same
//! bit-exact module, so the experiment tables are stable across runs and
//! machines.
//!
//! # Example
//!
//! ```
//! let module = codense_codegen::benchmark("compress").unwrap();
//! assert_eq!(module.validate(), Ok(()));
//! assert!(module.len() > 1000);
//! ```

pub mod generate;
pub mod ir;
pub mod lower;
pub mod lower_mips;
pub mod profile;
pub mod rng;

pub use generate::{
    benchmark, benchmark_mips, build_program, generate_module, generate_module_mips,
    generate_module_mips_with, generate_module_with, generate_suite, generate_suite_mips,
};
pub use lower::LowerOptions;
pub use profile::{lib_profile, spec_profiles, BenchProfile};
pub use rng::Rng;
