//! The random program builder: profiles → IR → object modules.
//!
//! Generation is fully deterministic (seeded [`Rng`]), so every run of the
//! reproduction sees bit-identical "benchmarks".

use codense_obj::ObjectModule;

use crate::ir::{
    BinOp, CmpOp, Cond, Expr, FuncRef, Function, Global, Local, Program, Stmt, UnOp, Width,
};
use crate::profile::{lib_profile, spec_profiles, BenchProfile};
use crate::rng::Rng;

/// Frequently used small constants, weighted the way compiler output skews
/// (0/1/powers of two dominate).
const COMMON_CONSTS: [i16; 14] = [0, 1, 2, 3, 4, 5, 8, 10, 16, 32, 64, 100, 255, -1];

struct Gen<'p> {
    rng: Rng,
    profile: &'p BenchProfile,
    /// Range of function indices this code may call.
    callees: std::ops::Range<u32>,
    /// Locals available in the current function.
    locals: u16,
    /// Whether the current function is a "giant" (very long loop bodies).
    giant: bool,
}

impl Gen<'_> {
    fn const_small(&mut self) -> i16 {
        if self.rng.chance(0.75) {
            *self.rng.pick(&COMMON_CONSTS)
        } else {
            self.rng.range(0, 511) as i16 - 128
        }
    }

    fn width(&mut self) -> Width {
        if self.rng.chance(self.profile.byte_ops) {
            if self.rng.chance(0.75) {
                Width::Byte
            } else {
                Width::Half
            }
        } else {
            Width::Word
        }
    }

    /// Picks a local, biased toward low indices (which the lowering maps to
    /// registers).
    fn local(&mut self) -> Local {
        let n = self.locals as usize;
        let a = self.rng.below(n);
        let b = self.rng.below(n);
        Local(a.min(b) as u16)
    }

    fn global(&mut self) -> Global {
        Global(self.rng.below(self.profile.globals as usize) as u16)
    }

    /// A leaf expression (depth 1), call-free.
    fn leaf(&mut self) -> Expr {
        match self.rng.weighted(&[5, 4, 2, 1]) {
            0 => Expr::Local(self.local(), Width::Word),
            1 => Expr::Const(self.const_small()),
            2 => Expr::Global(self.global(), self.width()),
            _ => {
                if self.rng.chance(0.05) {
                    Expr::ConstWide(self.rng.next_u64() as i32 & 0x00ff_ffff)
                } else {
                    Expr::Local(self.local(), self.width())
                }
            }
        }
    }

    /// An expression of at most the given depth, call-free.
    fn expr(&mut self, depth: usize) -> Expr {
        if depth <= 1 {
            return self.leaf();
        }
        match self.rng.weighted(&[5, 4, 2, 2]) {
            0 => self.leaf(),
            1 => {
                let sh_l = self.rng.range(1, 4) as u8;
                let sh_r = self.rng.range(1, 8) as u8;
                let op = *self.rng.pick(&[
                    BinOp::Add,
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Mul,
                    BinOp::Shl(sh_l),
                    BinOp::Shr(sh_r),
                    BinOp::Sar(sh_r),
                ]);
                // Right operand is frequently a small constant, like real code.
                let rhs = if self.rng.chance(0.55) {
                    Expr::Const(self.const_small())
                } else {
                    self.expr(depth - 1)
                };
                Expr::Bin(op, Box::new(self.expr(depth - 1)), Box::new(rhs))
            }
            2 => {
                let op = *self.rng.pick(&[UnOp::Neg, UnOp::Not, UnOp::ExtByte, UnOp::MaskByte]);
                Expr::Un(op, Box::new(self.expr(depth - 1)))
            }
            _ => Expr::Index {
                base: self.local(),
                index: Box::new(self.expr((depth - 1).min(2))),
                width: self.width(),
            },
        }
    }

    fn cond(&mut self) -> Cond {
        let unsigned = self.rng.chance(0.4);
        let op =
            *self.rng.pick(&[CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]);
        let rhs = if self.rng.chance(0.7) {
            Expr::Const(if unsigned { self.const_small().abs() } else { self.const_small() })
        } else {
            self.leaf()
        };
        Cond {
            op,
            unsigned,
            lhs: self.expr(2),
            rhs,
            crf: u8::from(self.rng.chance(self.profile.cr1_bias)),
        }
    }

    fn call_args(&mut self) -> Vec<Expr> {
        let n = self.rng.range(0, 3);
        (0..n).map(|_| self.leaf()).collect()
    }

    fn callee(&mut self) -> FuncRef {
        FuncRef(self.callees.start + self.rng.below(self.callees.len()) as u32)
    }

    /// One statement; `nest` limits remaining control-flow nesting.
    fn stmt(&mut self, nest: usize) -> Stmt {
        let mut weights = self.profile.stmt_weights;
        if nest == 0 {
            // No further control flow: only assigns, calls, stores.
            weights[1] = 0;
            weights[2] = 0;
            weights[3] = 0;
            weights[5] = 0;
        }
        match self.rng.weighted(&weights) {
            0 => {
                // Assign: local or global target.
                if self.rng.chance(0.3) {
                    Stmt::AssignGlobal(
                        self.global(),
                        self.width(),
                        self.expr(self.profile.expr_depth),
                    )
                } else if self.rng.chance(0.18) {
                    // Call result assignment (the only place calls appear in
                    // expressions, per the lowering contract).
                    Stmt::AssignLocal(self.local(), Expr::Call(self.callee(), self.call_args()))
                } else {
                    Stmt::AssignLocal(self.local(), self.expr(self.profile.expr_depth))
                }
            }
            1 => {
                let then_ = self.body(nest - 1, 1, 3);
                let els = if self.rng.chance(self.profile.else_prob) {
                    self.body(nest - 1, 1, 3)
                } else {
                    Vec::new()
                };
                Stmt::If { cond: self.cond(), then_, els }
            }
            2 => {
                // Giant functions contain gcc-style very long loop bodies,
                // whose head conditional branch spans thousands of
                // instructions (the Table 1 "too narrow" tail).
                let body = if self.giant && nest == 2 {
                    self.body(1, 90, 200)
                } else {
                    self.body(nest - 1, 1, 4)
                };
                Stmt::While { cond: self.cond(), body }
            }
            3 => Stmt::For {
                var: self.local(),
                from: self.rng.range(0, 3) as i16,
                to: self.rng.range(4, 48) as i16,
                body: self.body(nest - 1, 1, 4),
            },
            4 => Stmt::Call(self.callee(), self.call_args()),
            5 => {
                let ncases =
                    self.rng.range(self.profile.switch_cases.0, self.profile.switch_cases.1);
                let cases = (0..ncases).map(|_| self.body(0, 1, 3)).collect();
                Stmt::Switch { scrutinee: self.expr(2), cases }
            }
            _ => Stmt::StoreIndex {
                base: self.local(),
                index: self.expr(2),
                width: self.width(),
                value: self.expr(self.profile.expr_depth.min(3)),
            },
        }
    }

    fn body(&mut self, nest: usize, lo: usize, hi: usize) -> Vec<Stmt> {
        let n = self.rng.range(lo, hi);
        (0..n).map(|_| self.stmt(nest)).collect()
    }

    fn function(&mut self, name: String, giant: bool) -> Function {
        self.giant = giant;
        let locals =
            self.rng.range(self.profile.locals.0 as usize, self.profile.locals.1 as usize) as u16;
        self.locals = locals.max(1);
        let params = self.rng.range(0, 3.min(self.locals as usize)) as u16;
        let n = if giant {
            self.rng.range(4, 8)
        } else {
            self.rng.range(self.profile.stmts.0, self.profile.stmts.1)
        };
        let mut body: Vec<Stmt> = (0..n).map(|_| self.stmt(2)).collect();
        // Most functions return a value; some return early inside the body.
        if self.rng.chance(0.25) && body.len() > 2 {
            let pos = self.rng.range(1, body.len() - 1);
            let ret = if self.rng.chance(0.7) {
                Stmt::Return(Some(Expr::Const(self.const_small())))
            } else {
                Stmt::Return(None)
            };
            // Early returns are conditional, as in real code.
            body.insert(pos, Stmt::If { cond: self.cond(), then_: vec![ret], els: vec![] });
        }
        if self.rng.chance(0.8) {
            body.push(Stmt::Return(Some(self.expr(2))));
        }
        Function { name, params, locals: self.locals, body }
    }
}

/// Generates the IR functions for one profile. `callees` is the index range
/// the generated code may call (the caller decides how user and library
/// functions are interleaved in the final program).
fn generate_functions(
    profile: &BenchProfile,
    name_prefix: &str,
    callees: std::ops::Range<u32>,
) -> Vec<Function> {
    let mut g = Gen { rng: Rng::new(profile.seed), profile, callees, locals: 1, giant: false };
    (0..profile.functions)
        .map(|i| g.function(format!("{name_prefix}{i}"), i < profile.giant_funcs))
        .collect()
}

/// Builds the complete IR program for one benchmark: user functions followed
/// by the shared statically-linked library.
pub fn build_program(profile: &BenchProfile) -> Program {
    let lib = lib_profile();
    let user_n = profile.functions as u32;
    let lib_n = lib.functions as u32;
    // User code calls anything; the library only calls itself (it must be
    // identical across benchmarks, so it cannot reference user functions).
    let mut functions = generate_functions(profile, "u_", 0..user_n + lib_n);
    functions.extend(generate_functions(&lib, "lib_", user_n..user_n + lib_n));
    Program { name: profile.name.to_owned(), functions, globals: profile.globals.max(lib.globals) }
}

/// Generates the object module for one benchmark profile.
///
/// # Panics
///
/// Panics if lowering fails, which would indicate a generator bug (all
/// generated functions are small enough for every branch to resolve).
pub fn generate_module(profile: &BenchProfile) -> ObjectModule {
    generate_module_with(profile, crate::lower::LowerOptions::default())
}

/// Generates a benchmark with explicit lowering policy (e.g. standardized
/// prologues, the paper's §5 proposal).
///
/// # Panics
///
/// Panics if lowering fails (a generator bug).
pub fn generate_module_with(
    profile: &BenchProfile,
    options: crate::lower::LowerOptions,
) -> ObjectModule {
    let program = build_program(profile);
    let module =
        crate::lower::lower_program_with(&program, options).expect("generated program lowers");
    debug_assert_eq!(module.validate(), Ok(()));
    module
}

/// Generates the full eight-benchmark suite in the paper's order.
pub fn generate_suite() -> Vec<ObjectModule> {
    spec_profiles().iter().map(generate_module).collect()
}

/// Generates a single benchmark by its paper name (`"gcc"`, `"ijpeg"`, …).
pub fn benchmark(name: &str) -> Option<ObjectModule> {
    spec_profiles().iter().find(|p| p.name == name).map(generate_module)
}

/// Generates the MIPS object module for one benchmark profile — the *same*
/// IR program as [`generate_module`] (bit-identical generator stream),
/// lowered through the MIPS templates.
///
/// # Panics
///
/// Panics if lowering fails, which would indicate a generator bug.
pub fn generate_module_mips(profile: &BenchProfile) -> ObjectModule {
    generate_module_mips_with(profile, crate::lower::LowerOptions::default())
}

/// [`generate_module_mips`] with explicit lowering policy.
///
/// # Panics
///
/// Panics if lowering fails (a generator bug).
pub fn generate_module_mips_with(
    profile: &BenchProfile,
    options: crate::lower::LowerOptions,
) -> ObjectModule {
    let program = build_program(profile);
    let module = crate::lower_mips::lower_program_mips_with(&program, options)
        .expect("generated program lowers");
    debug_assert_eq!(module.validate_with(codense_isa::IsaRef(&codense_mips::ISA)), Ok(()));
    module
}

/// Generates the full eight-benchmark suite as MIPS modules.
pub fn generate_suite_mips() -> Vec<ObjectModule> {
    spec_profiles().iter().map(generate_module_mips).collect()
}

/// Generates a single MIPS benchmark by its paper name.
pub fn benchmark_mips(name: &str) -> Option<ObjectModule> {
    spec_profiles().iter().find(|p| p.name == name).map(generate_module_mips)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = &spec_profiles()[0];
        let a = generate_module(p);
        let b = generate_module(p);
        assert_eq!(a.code, b.code);
        assert_eq!(a.functions, b.functions);
        assert_eq!(a.jump_tables, b.jump_tables);
    }

    #[test]
    fn modules_validate() {
        // Smallest benchmark only; the full suite is exercised by
        // integration tests.
        let m = benchmark("compress").unwrap();
        assert_eq!(m.validate(), Ok(()));
        assert!(m.len() > 2000, "compress stand-in too small: {}", m.len());
    }

    #[test]
    fn library_tail_is_shared() {
        let a = benchmark("compress").unwrap();
        let b = benchmark("li").unwrap();
        // The final library function bodies are identical instruction
        // sequences modulo relocation; compare the *last* function's length.
        let fa = a.functions.last().unwrap();
        let fb = b.functions.last().unwrap();
        assert_eq!(fa.name, fb.name);
        assert_eq!(fa.len(), fb.len());
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(benchmark("espresso").is_none());
    }

    #[test]
    fn mips_generation_is_deterministic() {
        let p = &spec_profiles()[0];
        let a = generate_module_mips(p);
        let b = generate_module_mips(p);
        assert_eq!(a.code, b.code);
        assert_eq!(a.functions, b.functions);
        assert_eq!(a.jump_tables, b.jump_tables);
    }

    #[test]
    fn mips_modules_validate() {
        let m = benchmark_mips("compress").unwrap();
        assert_eq!(m.validate_with(codense_isa::IsaRef(&codense_mips::ISA)), Ok(()));
        assert!(m.len() > 2000, "compress stand-in too small: {}", m.len());
    }

    #[test]
    fn both_isas_lower_the_same_ir() {
        // The two backends consume the same IR program (one generator
        // stream), so they agree on structure: function count, names, and
        // jump-table shapes — only the instruction encoding differs.
        let ppc = benchmark("compress").unwrap();
        let mips = benchmark_mips("compress").unwrap();
        assert_eq!(ppc.functions.len(), mips.functions.len());
        for (a, b) in ppc.functions.iter().zip(&mips.functions) {
            assert_eq!(a.name, b.name);
        }
        assert_eq!(ppc.jump_tables.len(), mips.jump_tables.len());
        for (a, b) in ppc.jump_tables.iter().zip(&mips.jump_tables) {
            assert_eq!(a.targets.len(), b.targets.len());
        }
        // And the encodings really are different ISAs.
        assert_ne!(ppc.code, mips.code);
    }

    #[test]
    fn mips_standardized_prologues_grow_code() {
        let profiles = spec_profiles();
        let p = profiles.iter().find(|p| p.name == "compress").unwrap();
        let plain = generate_module_mips(p);
        let std_pe = generate_module_mips_with(
            p,
            crate::lower::LowerOptions { standardize_prologues: true, ..Default::default() },
        );
        assert!(std_pe.len() > plain.len());
        assert_eq!(std_pe.validate_with(codense_isa::IsaRef(&codense_mips::ISA)), Ok(()));
    }
}
