//! Benchmark profiles: the shape parameters for the eight SPEC CINT95
//! stand-ins and the shared runtime library.
//!
//! Each profile controls program scale (function count, statements per
//! function) and code character (byte-operation density, control-flow mix,
//! switch usage, global pressure). Scales are chosen so the *relative*
//! ordering of the paper's benchmarks is preserved — `gcc` largest and most
//! irregular, `compress` smallest — while keeping the whole suite fast to
//! generate and compress.

/// Shape parameters for one synthetic benchmark.
#[derive(Debug, Clone)]
pub struct BenchProfile {
    /// Benchmark name (matches the paper's SPEC CINT95 names).
    pub name: &'static str,
    /// Deterministic generation seed.
    pub seed: u64,
    /// Number of user functions.
    pub functions: usize,
    /// Statements per function: inclusive range.
    pub stmts: (usize, usize),
    /// Locals per function: inclusive range.
    pub locals: (u16, u16),
    /// Maximum expression depth (≤ 4; the lowering's scratch pool bounds it).
    pub expr_depth: usize,
    /// Number of global variable slots.
    pub globals: u16,
    /// Probability that a memory operand is byte-width (compress/ijpeg are
    /// byte-crunching codes; gcc/perl are pointer-and-word codes).
    pub byte_ops: f64,
    /// Statement kind weights: assign, if, while, for, call, switch, store.
    pub stmt_weights: [u32; 7],
    /// Probability a condition uses cr1 instead of cr0 (compilers alternate
    /// when scheduling compares; the paper's Fig 2 shows cr1 compares).
    pub cr1_bias: f64,
    /// Probability an `if` has an `else` arm.
    pub else_prob: f64,
    /// Switch case count range.
    pub switch_cases: (usize, usize),
    /// Number of "giant" functions (gcc-style multi-thousand-instruction
    /// bodies with very long loops). These produce the long conditional-
    /// branch spans behind Table 1's "offset too narrow" tail.
    pub giant_funcs: usize,
}

/// The shared statically-linked runtime library profile (every benchmark
/// links the same library, as the paper's statically-linked SPEC binaries
/// did).
pub fn lib_profile() -> BenchProfile {
    BenchProfile {
        name: "libc",
        seed: 0xC11B_0001,
        functions: 50,
        stmts: (4, 12),
        locals: (2, 8),
        expr_depth: 3,
        globals: 64,
        byte_ops: 0.35,
        stmt_weights: [10, 6, 3, 4, 3, 1, 5],
        cr1_bias: 0.3,
        else_prob: 0.35,
        switch_cases: (3, 8),
        giant_funcs: 0,
    }
}

/// Profiles for the eight SPEC CINT95 stand-ins, ordered as the paper's
/// figures order them.
pub fn spec_profiles() -> Vec<BenchProfile> {
    vec![
        BenchProfile {
            name: "compress",
            seed: 0x5EED_0001,
            functions: 30,
            stmts: (5, 12),
            locals: (3, 9),
            expr_depth: 3,
            globals: 40,
            byte_ops: 0.5,
            stmt_weights: [10, 6, 4, 5, 2, 1, 6],
            cr1_bias: 0.35,
            else_prob: 0.3,
            switch_cases: (3, 6),
            giant_funcs: 0,
        },
        BenchProfile {
            name: "gcc",
            seed: 0x5EED_0002,
            functions: 200,
            stmts: (5, 14),
            locals: (3, 12),
            expr_depth: 4,
            globals: 320,
            byte_ops: 0.15,
            stmt_weights: [10, 9, 3, 3, 5, 3, 4],
            cr1_bias: 0.45,
            else_prob: 0.45,
            switch_cases: (4, 10),
            giant_funcs: 5,
        },
        BenchProfile {
            name: "go",
            seed: 0x5EED_0003,
            functions: 100,
            stmts: (6, 14),
            locals: (4, 12),
            expr_depth: 4,
            globals: 180,
            byte_ops: 0.1,
            stmt_weights: [12, 9, 3, 5, 3, 1, 5],
            cr1_bias: 0.4,
            else_prob: 0.5,
            switch_cases: (3, 8),
            giant_funcs: 2,
        },
        BenchProfile {
            name: "ijpeg",
            seed: 0x5EED_0004,
            functions: 80,
            stmts: (5, 13),
            locals: (3, 10),
            expr_depth: 4,
            globals: 120,
            byte_ops: 0.45,
            stmt_weights: [11, 5, 3, 7, 3, 1, 7],
            cr1_bias: 0.3,
            else_prob: 0.3,
            switch_cases: (3, 6),
            giant_funcs: 1,
        },
        BenchProfile {
            name: "li",
            seed: 0x5EED_0005,
            functions: 52,
            stmts: (4, 10),
            locals: (2, 7),
            expr_depth: 3,
            globals: 80,
            byte_ops: 0.2,
            stmt_weights: [9, 7, 3, 2, 6, 2, 4],
            cr1_bias: 0.35,
            else_prob: 0.4,
            switch_cases: (3, 7),
            giant_funcs: 0,
        },
        BenchProfile {
            name: "m88ksim",
            seed: 0x5EED_0006,
            functions: 65,
            stmts: (5, 12),
            locals: (3, 9),
            expr_depth: 3,
            globals: 140,
            byte_ops: 0.25,
            stmt_weights: [11, 7, 3, 4, 4, 2, 5],
            cr1_bias: 0.35,
            else_prob: 0.4,
            switch_cases: (4, 10),
            giant_funcs: 1,
        },
        BenchProfile {
            name: "perl",
            seed: 0x5EED_0007,
            functions: 115,
            stmts: (5, 14),
            locals: (3, 11),
            expr_depth: 4,
            globals: 220,
            byte_ops: 0.3,
            stmt_weights: [10, 8, 4, 3, 5, 3, 4],
            cr1_bias: 0.4,
            else_prob: 0.45,
            switch_cases: (4, 12),
            giant_funcs: 3,
        },
        BenchProfile {
            name: "vortex",
            seed: 0x5EED_0008,
            functions: 140,
            stmts: (5, 12),
            locals: (3, 10),
            expr_depth: 3,
            globals: 260,
            byte_ops: 0.2,
            stmt_weights: [12, 8, 3, 3, 6, 2, 5],
            cr1_bias: 0.4,
            else_prob: 0.4,
            switch_cases: (3, 9),
            giant_funcs: 2,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_benchmarks_in_paper_order() {
        let names: Vec<&str> = spec_profiles().iter().map(|p| p.name).collect();
        assert_eq!(names, ["compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex"]);
    }

    #[test]
    fn seeds_distinct() {
        let mut seeds: Vec<u64> = spec_profiles().iter().map(|p| p.seed).collect();
        seeds.push(lib_profile().seed);
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 9);
    }

    #[test]
    fn gcc_is_largest_compress_smallest() {
        let profs = spec_profiles();
        let gcc = profs.iter().find(|p| p.name == "gcc").unwrap();
        let compress = profs.iter().find(|p| p.name == "compress").unwrap();
        for p in &profs {
            assert!(gcc.functions >= p.functions);
            assert!(compress.functions <= p.functions);
        }
    }
}
