//! SDTS lowering: IR → PowerPC object code through fixed instruction
//! templates.
//!
//! Every IR construct expands to one fixed instruction pattern parameterized
//! only by register numbers, frame offsets and immediates — the property
//! (§1.1 of the paper) that makes compiled code highly compressible.
//! Conventions follow GCC's SVR4 PowerPC output: `r1` stack pointer, args in
//! `r3..r6`, return value in `r3`, scratch temporaries drawn from
//! `r9/r11/r12/r10/r8`, register locals in `r26..r31`, `stmw`/`lmw`
//! prologue/epilogue save sequences, and LR saved at `N+4(r1)`.

use std::collections::HashMap;

use codense_obj::{FunctionInfo, JumpTable, ObjectModule};
use codense_ppc::asm::{AsmError, Assembler};
use codense_ppc::insn::Insn;
use codense_ppc::reg::{CrField, Gpr, R0, R1, R3};

use crate::ir::{BinOp, CmpOp, Cond, Expr, Function, Program, Stmt, UnOp, Width};

/// Scratch registers used by expression evaluation, in allocation order.
const SCRATCH: [u8; 5] = [9, 11, 12, 10, 8];

/// Nonvolatile registers assignable to locals, in allocation order.
const REG_POOL: [u8; 6] = [31, 30, 29, 28, 27, 26];

/// Synthetic high halves of the `.data` addresses used by global accesses
/// and jump tables (all globals share one `lis` constant — a deliberate,
/// realistic redundancy source).
const GLOBAL_HI: i16 = 0x0040;
const TABLE_HI: i16 = 0x0050;

/// Where a local variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Place {
    /// In a nonvolatile register.
    Reg(Gpr),
    /// In the stack frame at the given offset from `r1`.
    Frame(i16),
}

/// Code-generation policy knobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerOptions {
    /// Standardize every prologue/epilogue: always save the link register
    /// and the full nonvolatile pool into a fixed-size frame, regardless of
    /// what the function uses. This is the paper's §5 future-work proposal
    /// ("if the prologue sequence were standardized to always save all
    /// registers, then all instructions of the sequence could be compressed
    /// to a single codeword") — larger uncompressed code, better
    /// compressed code.
    pub standardize_prologues: bool,
    /// Emit a two-instruction entry stub ahead of function 0 (`bl F0; sc`
    /// on PowerPC, `jal F0; syscall` on MIPS) so the lowered module is
    /// directly *runnable*: execution starts at instruction 0, calls into
    /// the program's root function, and halts with its return value as the
    /// exit code when the root returns. Off by default so benchmark
    /// modules used purely as compression fodder stay byte-identical.
    pub entry_stub: bool,
}

/// Lowers a whole [`Program`] to an [`ObjectModule`].
///
/// # Errors
///
/// Returns an [`AsmError`] if a branch displacement overflows (which only
/// happens for absurdly large generated functions).
///
/// # Panics
///
/// Panics if the IR violates the lowering contract: expression depth beyond
/// the scratch pool, calls nested inside live expressions, or references to
/// out-of-range locals/functions.
pub fn lower_program(program: &Program) -> Result<ObjectModule, AsmError> {
    lower_program_with(program, LowerOptions::default())
}

/// Like [`lower_program`], with explicit policy knobs.
///
/// # Errors
///
/// Returns an [`AsmError`] if a branch displacement overflows.
pub fn lower_program_with(
    program: &Program,
    options: LowerOptions,
) -> Result<ObjectModule, AsmError> {
    let mut lw = Lowerer {
        asm: Assembler::new(),
        label_counter: 0,
        functions: Vec::with_capacity(program.functions.len()),
        tables: Vec::new(),
        options,
    };
    if options.entry_stub {
        lw.emit_entry_stub();
    }
    for (i, func) in program.functions.iter().enumerate() {
        lw.lower_function(i, func);
    }
    // Resolve jump-table case labels to instruction indices while the
    // assembler still owns the label map.
    let tables: Vec<JumpTable> = lw
        .tables
        .iter()
        .map(|labels| JumpTable {
            targets: labels
                .iter()
                .map(|l| lw.asm.label_pos(l).expect("case label emitted"))
                .collect(),
        })
        .collect();
    let mut module = ObjectModule::new(program.name.clone());
    module.functions = lw.functions;
    module.jump_tables = tables;
    module.code = lw.asm.finish()?;
    Ok(module)
}

struct Lowerer {
    asm: Assembler,
    label_counter: usize,
    functions: Vec<FunctionInfo>,
    /// Pending jump tables as vectors of case-label names.
    tables: Vec<Vec<String>>,
    options: LowerOptions,
}

/// Per-function lowering context.
struct FnCtx {
    places: Vec<Place>,
    epilogue: String,
    /// Scratch registers currently holding live values.
    live: u8,
    leaf: bool,
}

impl Lowerer {
    fn fresh(&mut self, stem: &str) -> String {
        self.label_counter += 1;
        format!("{stem}{}", self.label_counter)
    }

    /// The runnable-module entry stub: call the root function, then halt
    /// with its return value (already in `r3`, the exit register) as the
    /// exit code. Recorded as its own zero-prologue [`FunctionInfo`] so the
    /// compressor's region classification sees it as ordinary body code.
    fn emit_entry_stub(&mut self) {
        let start = self.asm.here();
        self.asm.bl("F0");
        self.asm.emit(Insn::Sc);
        let end = self.asm.here();
        self.functions.push(FunctionInfo {
            name: "__start".to_string(),
            start,
            end,
            prologue_len: 0,
            epilogues: Vec::new(),
        });
    }

    fn lower_function(&mut self, index: usize, func: &Function) {
        let std_pe = self.options.standardize_prologues;
        // Under standardized prologues every function saves LR and the full
        // nonvolatile pool into one fixed-size frame, so the whole
        // prologue/epilogue byte sequence is identical across functions.
        let leaf = function_is_leaf(func) && !std_pe;
        let nreg = (func.locals as usize).min(REG_POOL.len()).min(reg_locals_for(func));
        let nstack = func.locals as usize - nreg;

        // Frame layout: [0: back chain][8..: stack locals][save area][N]
        let save_regs = if std_pe {
            32 - REG_POOL[REG_POOL.len() - 1] as i16
        } else if nreg > 0 {
            32 - REG_POOL[nreg - 1] as i16
        } else {
            0
        };
        let raw = 8 + 4 * nstack as i16 + 4 * save_regs;
        let frame = if std_pe { 112 } else { (raw + 15) & !15 };
        debug_assert!(raw <= frame, "fixed frame too small for locals");

        let places: Vec<Place> = (0..func.locals as usize)
            .map(|i| {
                if i < nreg {
                    Place::Reg(Gpr::new(REG_POOL[i]).unwrap())
                } else {
                    Place::Frame(8 + 4 * (i - nreg) as i16)
                }
            })
            .collect();

        let start = self.asm.here();
        self.asm.label(&format!("F{index}"));

        // --- prologue template ------------------------------------------
        self.asm.emit(Insn::Stwu { rs: R1, ra: R1, d: -frame });
        if !leaf {
            self.asm.emit(Insn::Mfspr { rt: R0, spr: codense_ppc::Spr::Lr });
            self.asm.emit(Insn::Stw { rs: R0, ra: R1, d: frame + 4 });
        }
        if std_pe {
            let rs = Gpr::new(REG_POOL[REG_POOL.len() - 1]).unwrap();
            self.asm.emit(Insn::Stmw { rs, ra: R1, d: frame - 4 * save_regs });
        } else if nreg > 0 {
            let rs = Gpr::new(REG_POOL[nreg - 1]).unwrap();
            self.asm.emit(Insn::Stmw { rs, ra: R1, d: frame - 4 * save_regs });
        }
        // Home incoming parameters.
        for p in 0..func.params.min(4) {
            let arg = Gpr::new(3 + p as u8).unwrap();
            match places[p as usize] {
                Place::Reg(r) => {
                    self.asm.emit(Insn::Or { ra: r, rs: arg, rb: arg, rc: false });
                }
                Place::Frame(off) => {
                    self.asm.emit(Insn::Stw { rs: arg, ra: R1, d: off });
                }
            }
        }
        let prologue_len = self.asm.here() - start;

        let mut ctx = FnCtx { places, epilogue: self.fresh("E"), live: 0, leaf };

        for stmt in &func.body {
            self.stmt(&mut ctx, stmt);
        }

        // --- epilogue template ------------------------------------------
        let epi_start = self.asm.here();
        let epilogue = ctx.epilogue.clone();
        self.asm.label(&epilogue);
        if std_pe {
            let rt = Gpr::new(REG_POOL[REG_POOL.len() - 1]).unwrap();
            self.asm.emit(Insn::Lmw { rt, ra: R1, d: frame - 4 * save_regs });
        } else if nreg > 0 {
            let rt = Gpr::new(REG_POOL[nreg - 1]).unwrap();
            self.asm.emit(Insn::Lmw { rt, ra: R1, d: frame - 4 * save_regs });
        }
        if !leaf {
            self.asm.emit(Insn::Lwz { rt: R0, ra: R1, d: frame + 4 });
            self.asm.emit(Insn::Mtspr { spr: codense_ppc::Spr::Lr, rs: R0 });
        }
        self.asm.emit(Insn::Addi { rt: R1, ra: R1, si: frame });
        self.asm.blr();
        let end = self.asm.here();

        self.functions.push(FunctionInfo {
            name: func.name.clone(),
            start,
            end,
            prologue_len,
            epilogues: std::iter::once(epi_start..end).collect(),
        });
    }

    // ---- expressions ----------------------------------------------------

    /// Allocates the next scratch register.
    fn alloc(&mut self, ctx: &mut FnCtx) -> Gpr {
        assert!((ctx.live as usize) < SCRATCH.len(), "expression too deep for scratch pool");
        let r = Gpr::new(SCRATCH[ctx.live as usize]).unwrap();
        ctx.live += 1;
        r
    }

    fn free(&mut self, ctx: &mut FnCtx, n: u8) {
        ctx.live -= n;
    }

    /// Evaluates `e`, returning the register holding the result. Register
    /// locals are returned in place (no copy); all other results occupy a
    /// newly allocated scratch register.
    fn eval(&mut self, ctx: &mut FnCtx, e: &Expr) -> (Gpr, u8) {
        match e {
            Expr::Local(l, Width::Word) => {
                if let Place::Reg(r) = ctx.places[l.0 as usize] {
                    return (r, 0);
                }
                let d = self.alloc(ctx);
                let off = frame_off(ctx, *l);
                self.asm.emit(Insn::Lwz { rt: d, ra: R1, d: off });
                (d, 1)
            }
            Expr::Local(l, w) => {
                let d = self.alloc(ctx);
                match ctx.places[l.0 as usize] {
                    Place::Reg(r) => {
                        // Sub-word read of a register local: mask template.
                        match w {
                            Width::Byte => self.asm.emit(Insn::Rlwinm {
                                ra: d,
                                rs: r,
                                sh: 0,
                                mb: 24,
                                me: 31,
                                rc: false,
                            }),
                            _ => self.asm.emit(Insn::Rlwinm {
                                ra: d,
                                rs: r,
                                sh: 0,
                                mb: 16,
                                me: 31,
                                rc: false,
                            }),
                        };
                    }
                    Place::Frame(off) => {
                        match w {
                            Width::Byte => self.asm.emit(Insn::Lbz { rt: d, ra: R1, d: off }),
                            Width::Half => self.asm.emit(Insn::Lhz { rt: d, ra: R1, d: off }),
                            Width::Word => unreachable!(),
                        };
                    }
                }
                (d, 1)
            }
            Expr::Const(c) => {
                let d = self.alloc(ctx);
                self.asm.emit(Insn::Addi { rt: d, ra: R0, si: *c });
                (d, 1)
            }
            Expr::ConstWide(c) => {
                let d = self.alloc(ctx);
                let hi = (*c >> 16) as i16;
                let lo = (*c & 0xffff) as u16;
                self.asm.emit(Insn::Addis { rt: d, ra: R0, si: hi });
                self.asm.emit(Insn::Ori { ra: d, rs: d, ui: lo });
                (d, 1)
            }
            Expr::Global(g, w) => {
                let d = self.alloc(ctx);
                self.asm.emit(Insn::Addis { rt: d, ra: R0, si: GLOBAL_HI });
                let off = 4 * g.0 as i16;
                match w {
                    Width::Byte => self.asm.emit(Insn::Lbz { rt: d, ra: d, d: off }),
                    Width::Half => self.asm.emit(Insn::Lhz { rt: d, ra: d, d: off }),
                    Width::Word => self.asm.emit(Insn::Lwz { rt: d, ra: d, d: off }),
                };
                (d, 1)
            }
            Expr::Index { base, index, width } => {
                let (b, b_owned) = self.base_reg(ctx, *base);
                let (i0, i_owned0) = self.eval(ctx, index);
                let (i, i_owned) = self.scale_index(ctx, i0, i_owned0, *width);
                // Reuse the earliest owned scratch as the destination so the
                // allocation stack stays LIFO; allocate only if neither
                // operand owns one.
                let total = b_owned + i_owned;
                let d = if b_owned > 0 {
                    b
                } else if i_owned > 0 {
                    i
                } else {
                    self.alloc(ctx)
                };
                match width {
                    Width::Byte => self.asm.emit(Insn::Lbzx { rt: d, ra: b, rb: i }),
                    Width::Half => self.asm.emit(Insn::Lhzx { rt: d, ra: b, rb: i }),
                    Width::Word => self.asm.emit(Insn::Lwzx { rt: d, ra: b, rb: i }),
                };
                if total == 2 {
                    self.free(ctx, 1);
                }
                (d, 1)
            }
            Expr::Un(op, inner) => {
                let (s, owned) = self.eval(ctx, inner);
                let d = if owned > 0 { s } else { self.alloc(ctx) };
                match op {
                    UnOp::Neg => self.asm.emit(Insn::Neg { rt: d, ra: s, rc: false }),
                    UnOp::Not => self.asm.emit(Insn::Nor { ra: d, rs: s, rb: s, rc: false }),
                    UnOp::ExtByte => self.asm.emit(Insn::Extsb { ra: d, rs: s, rc: false }),
                    UnOp::MaskByte => self.asm.emit(Insn::Rlwinm {
                        ra: d,
                        rs: s,
                        sh: 0,
                        mb: 24,
                        me: 31,
                        rc: false,
                    }),
                };
                (d, 1.max(owned))
            }
            Expr::Bin(op, a, b) => self.bin(ctx, *op, a, b),
            Expr::Call(f, args) => {
                assert_eq!(ctx.live, 0, "call nested inside a live expression");
                assert!(!ctx.leaf, "call lowered in a function marked leaf");
                self.emit_call(ctx, f.0, args);
                let d = self.alloc(ctx);
                self.asm.emit(Insn::Or { ra: d, rs: R3, rb: R3, rc: false });
                (d, 1)
            }
        }
    }

    fn base_reg(&mut self, ctx: &mut FnCtx, l: crate::ir::Local) -> (Gpr, u8) {
        match ctx.places[l.0 as usize] {
            Place::Reg(r) => (r, 0),
            Place::Frame(off) => {
                let d = self.alloc(ctx);
                self.asm.emit(Insn::Lwz { rt: d, ra: R1, d: off });
                (d, 1)
            }
        }
    }

    /// Applies the element-size scaling template to an index value,
    /// returning the register holding the scaled index and how many scratch
    /// registers it now owns.
    fn scale_index(&mut self, ctx: &mut FnCtx, i: Gpr, owned: u8, w: Width) -> (Gpr, u8) {
        let sh = match w {
            Width::Byte => return (i, owned),
            Width::Half => 1,
            Width::Word => 2,
        };
        let d = if owned > 0 { i } else { self.alloc(ctx) };
        self.asm.emit(Insn::Rlwinm { ra: d, rs: i, sh, mb: 0, me: 31 - sh, rc: false });
        (d, 1)
    }

    fn bin(&mut self, ctx: &mut FnCtx, op: BinOp, a: &Expr, b: &Expr) -> (Gpr, u8) {
        // Immediate-operand template specializations, as a compiler would
        // select (`addi`, `mulli`, `andi.`, `ori`, `xori`).
        if let Expr::Const(c) = b {
            let specialized = matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
            );
            if specialized {
                let (s, owned) = self.eval(ctx, a);
                let d = if owned > 0 { s } else { self.alloc(ctx) };
                match op {
                    BinOp::Add => self.asm.emit(Insn::Addi { rt: d, ra: s, si: *c }),
                    BinOp::Sub => self.asm.emit(Insn::Addi { rt: d, ra: s, si: c.wrapping_neg() }),
                    BinOp::Mul => self.asm.emit(Insn::Mulli { rt: d, ra: s, si: *c }),
                    BinOp::And => self.asm.emit(Insn::AndiRc { ra: d, rs: s, ui: *c as u16 }),
                    BinOp::Or => self.asm.emit(Insn::Ori { ra: d, rs: s, ui: *c as u16 }),
                    BinOp::Xor => self.asm.emit(Insn::Xori { ra: d, rs: s, ui: *c as u16 }),
                    _ => unreachable!(),
                };
                return (d, 1.max(owned));
            }
        }
        match op {
            BinOp::Shl(c) => {
                let (s, owned) = self.eval(ctx, a);
                let d = if owned > 0 { s } else { self.alloc(ctx) };
                self.asm.emit(Insn::Rlwinm { ra: d, rs: s, sh: c, mb: 0, me: 31 - c, rc: false });
                return (d, 1.max(owned));
            }
            BinOp::Shr(c) => {
                let (s, owned) = self.eval(ctx, a);
                let d = if owned > 0 { s } else { self.alloc(ctx) };
                self.asm.emit(Insn::Rlwinm { ra: d, rs: s, sh: 32 - c, mb: c, me: 31, rc: false });
                return (d, 1.max(owned));
            }
            BinOp::Sar(c) => {
                let (s, owned) = self.eval(ctx, a);
                let d = if owned > 0 { s } else { self.alloc(ctx) };
                self.asm.emit(Insn::Srawi { ra: d, rs: s, sh: c, rc: false });
                return (d, 1.max(owned));
            }
            _ => {}
        }
        let (ra_, a_owned) = self.eval(ctx, a);
        let (rb_, b_owned) = self.eval(ctx, b);
        let d = if a_owned > 0 {
            ra_
        } else if b_owned > 0 {
            rb_
        } else {
            self.alloc(ctx)
        };
        match op {
            BinOp::Add => self.asm.emit(Insn::Add { rt: d, ra: ra_, rb: rb_, rc: false }),
            BinOp::Sub => self.asm.emit(Insn::Subf { rt: d, ra: rb_, rb: ra_, rc: false }),
            BinOp::Mul => self.asm.emit(Insn::Mullw { rt: d, ra: ra_, rb: rb_, rc: false }),
            BinOp::Div => self.asm.emit(Insn::Divw { rt: d, ra: ra_, rb: rb_, rc: false }),
            BinOp::And => self.asm.emit(Insn::And { ra: d, rs: ra_, rb: rb_, rc: false }),
            BinOp::Or => self.asm.emit(Insn::Or { ra: d, rs: ra_, rb: rb_, rc: false }),
            BinOp::Xor => self.asm.emit(Insn::Xor { ra: d, rs: ra_, rb: rb_, rc: false }),
            BinOp::Shl(_) | BinOp::Shr(_) | BinOp::Sar(_) => unreachable!(),
        };
        // Free whichever operand scratches are no longer the result.
        let total = a_owned + b_owned;
        if total == 2 {
            self.free(ctx, 1);
            (d, 1)
        } else {
            (d, total.max(1))
        }
    }

    fn emit_call(&mut self, ctx: &mut FnCtx, callee: u32, args: &[Expr]) {
        assert!(args.len() <= 4, "at most 4 register arguments");
        for (i, arg) in args.iter().enumerate() {
            let (s, owned) = self.eval(ctx, arg);
            let dst = Gpr::new(3 + i as u8).unwrap();
            self.asm.emit(Insn::Or { ra: dst, rs: s, rb: s, rc: false });
            self.free(ctx, owned);
        }
        self.asm.bl(&format!("F{callee}"));
    }

    // ---- statements -------------------------------------------------------

    fn stmt(&mut self, ctx: &mut FnCtx, s: &Stmt) {
        debug_assert_eq!(ctx.live, 0, "scratches leaked between statements");
        match s {
            Stmt::AssignLocal(l, e) => {
                let (v, owned) = self.eval(ctx, e);
                match ctx.places[l.0 as usize] {
                    Place::Reg(r) => {
                        if r != v {
                            self.asm.emit(Insn::Or { ra: r, rs: v, rb: v, rc: false });
                        }
                    }
                    Place::Frame(off) => {
                        self.asm.emit(Insn::Stw { rs: v, ra: R1, d: off });
                    }
                }
                self.free(ctx, owned);
            }
            Stmt::AssignGlobal(g, w, e) => {
                let (v, owned) = self.eval(ctx, e);
                let a = self.alloc(ctx);
                self.asm.emit(Insn::Addis { rt: a, ra: R0, si: GLOBAL_HI });
                let off = 4 * g.0 as i16;
                match w {
                    Width::Byte => self.asm.emit(Insn::Stb { rs: v, ra: a, d: off }),
                    Width::Half => self.asm.emit(Insn::Sth { rs: v, ra: a, d: off }),
                    Width::Word => self.asm.emit(Insn::Stw { rs: v, ra: a, d: off }),
                };
                self.free(ctx, owned + 1);
            }
            Stmt::StoreIndex { base, index, width, value } => {
                let (v, v_owned) = self.eval(ctx, value);
                let (b, b_owned) = self.base_reg(ctx, *base);
                let (i0, i_owned0) = self.eval(ctx, index);
                let (i, i_owned) = self.scale_index(ctx, i0, i_owned0, *width);
                match width {
                    Width::Byte => self.asm.emit(Insn::Stbx { rs: v, ra: b, rb: i }),
                    Width::Half => self.asm.emit(Insn::Sthx { rs: v, ra: b, rb: i }),
                    Width::Word => self.asm.emit(Insn::Stwx { rs: v, ra: b, rb: i }),
                };
                self.free(ctx, v_owned + b_owned + i_owned);
            }
            Stmt::If { cond, then_, els } => {
                let l_else = self.fresh("L");
                let l_end = self.fresh("L");
                self.cond_branch(ctx, cond, false, if els.is_empty() { &l_end } else { &l_else });
                for st in then_ {
                    self.stmt(ctx, st);
                }
                if !els.is_empty() {
                    self.asm.b(&l_end);
                    self.asm.label(&l_else);
                    for st in els {
                        self.stmt(ctx, st);
                    }
                }
                self.asm.label(&l_end);
            }
            Stmt::While { cond, body } => {
                let l_head = self.fresh("L");
                let l_end = self.fresh("L");
                self.asm.label(&l_head);
                self.cond_branch(ctx, cond, false, &l_end);
                for st in body {
                    self.stmt(ctx, st);
                }
                self.asm.b(&l_head);
                self.asm.label(&l_end);
            }
            Stmt::For { var, from, to, body } => {
                // Bottom-tested loop with entry guard jump (GCC shape).
                let l_body = self.fresh("L");
                let l_test = self.fresh("L");
                self.stmt(ctx, &Stmt::AssignLocal(*var, Expr::Const(*from)));
                self.asm.b(&l_test);
                self.asm.label(&l_body);
                for st in body {
                    self.stmt(ctx, st);
                }
                // var += 1
                self.stmt(
                    ctx,
                    &Stmt::AssignLocal(
                        *var,
                        Expr::Bin(
                            BinOp::Add,
                            Box::new(Expr::Local(*var, Width::Word)),
                            Box::new(Expr::Const(1)),
                        ),
                    ),
                );
                self.asm.label(&l_test);
                let cond = Cond {
                    op: CmpOp::Lt,
                    unsigned: false,
                    lhs: Expr::Local(*var, Width::Word),
                    rhs: Expr::Const(*to),
                    crf: 0,
                };
                self.cond_branch(ctx, &cond, true, &l_body);
            }
            Stmt::Call(f, args) => {
                self.emit_call(ctx, f.0, args);
            }
            Stmt::Switch { scrutinee, cases } => {
                self.lower_switch(ctx, scrutinee, cases);
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    let (v, owned) = self.eval(ctx, e);
                    if v != R3 {
                        self.asm.emit(Insn::Or { ra: R3, rs: v, rb: v, rc: false });
                    }
                    self.free(ctx, owned);
                }
                let epilogue = ctx.epilogue.clone();
                self.asm.b(&epilogue);
            }
        }
        debug_assert_eq!(ctx.live, 0, "scratches leaked by statement");
    }

    fn lower_switch(&mut self, ctx: &mut FnCtx, scrutinee: &Expr, cases: &[Vec<Stmt>]) {
        let l_end = self.fresh("L");
        let case_labels: Vec<String> = (0..cases.len()).map(|_| self.fresh("C")).collect();

        let (s, owned) = self.eval(ctx, scrutinee);
        // Bounds check: unsigned compare against the case count.
        self.asm.emit(Insn::Cmplwi {
            bf: CrField::new(0).unwrap(),
            ra: s,
            ui: cases.len() as u16 - 1,
        });
        self.asm.bgt(CrField::new(0).unwrap(), &l_end);
        // Scale and dispatch through the jump table.
        let d = if owned > 0 { s } else { self.alloc(ctx) };
        self.asm.emit(Insn::Rlwinm { ra: d, rs: s, sh: 2, mb: 0, me: 29, rc: false });
        let a = self.alloc(ctx);
        let table_id = self.tables.len() as i16;
        self.asm.emit(Insn::Addis { rt: a, ra: R0, si: TABLE_HI });
        self.asm.emit(Insn::Addi { rt: a, ra: a, si: table_id * 64 });
        self.asm.emit(Insn::Lwzx { rt: a, ra: a, rb: d });
        self.asm.emit(Insn::Mtspr { spr: codense_ppc::Spr::Ctr, rs: a });
        self.asm.emit(Insn::Bcctr { bo: codense_ppc::insn::bo::ALWAYS, bi: 0, lk: false });
        self.free(ctx, owned.max(1) + 1);

        self.tables.push(case_labels.clone());
        for (label, body) in case_labels.iter().zip(cases) {
            self.asm.label(label);
            for st in body {
                self.stmt(ctx, st);
            }
            self.asm.b(&l_end);
        }
        self.asm.label(&l_end);
    }

    /// Evaluates a condition and emits a conditional branch to `label`,
    /// taken when the condition equals `sense`.
    fn cond_branch(&mut self, ctx: &mut FnCtx, cond: &Cond, sense: bool, label: &str) {
        let crf = CrField::new(cond.crf.min(7)).unwrap();
        let (a, a_owned) = self.eval(ctx, &cond.lhs);
        let freed = if let Expr::Const(c) = &cond.rhs {
            if cond.unsigned {
                self.asm.emit(Insn::Cmplwi { bf: crf, ra: a, ui: *c as u16 });
            } else {
                self.asm.emit(Insn::Cmpwi { bf: crf, ra: a, si: *c });
            }
            a_owned
        } else {
            let (b, b_owned) = self.eval(ctx, &cond.rhs);
            if cond.unsigned {
                self.asm.emit(Insn::Cmplw { bf: crf, ra: a, rb: b });
            } else {
                self.asm.emit(Insn::Cmpw { bf: crf, ra: a, rb: b });
            }
            a_owned + b_owned
        };
        self.free(ctx, freed);

        use codense_ppc::insn::bo;
        // (bit, sense-for-true)
        let (bit, bo_true) = match cond.op {
            CmpOp::Eq => (crf.eq_bit(), bo::IF_TRUE),
            CmpOp::Ne => (crf.eq_bit(), bo::IF_FALSE),
            CmpOp::Lt => (crf.lt_bit(), bo::IF_TRUE),
            CmpOp::Ge => (crf.lt_bit(), bo::IF_FALSE),
            CmpOp::Gt => (crf.gt_bit(), bo::IF_TRUE),
            CmpOp::Le => (crf.gt_bit(), bo::IF_FALSE),
        };
        let bo_field = if sense {
            bo_true
        } else {
            // Negate: IF_TRUE <-> IF_FALSE.
            match bo_true {
                bo::IF_TRUE => bo::IF_FALSE,
                _ => bo::IF_TRUE,
            }
        };
        self.asm.bc(bo_field, bit, label);
    }
}

fn frame_off(ctx: &FnCtx, l: crate::ir::Local) -> i16 {
    match ctx.places[l.0 as usize] {
        Place::Frame(off) => off,
        Place::Reg(_) => unreachable!("frame_off on register local"),
    }
}

/// How many of the function's locals should live in registers: loop
/// variables and the hottest few slots. The generator biases low slot
/// indices toward hot use, so "first k slots" is the right policy.
///
/// Shared with the MIPS lowering ([`crate::lower_mips`]) so the
/// register-allocation policy is ISA-independent.
pub(crate) fn reg_locals_for(func: &Function) -> usize {
    // Reserve register homes for roughly half the locals, capped by pool.
    (func.locals as usize).div_ceil(2)
}

/// Whether a function makes no calls (shared leaf policy across lowerings).
pub(crate) fn function_is_leaf(func: &Function) -> bool {
    fn expr_calls(e: &Expr) -> bool {
        match e {
            Expr::Call(..) => true,
            Expr::Bin(_, a, b) => expr_calls(a) || expr_calls(b),
            Expr::Un(_, a) => expr_calls(a),
            Expr::Index { index, .. } => expr_calls(index),
            _ => false,
        }
    }
    fn stmt_calls(s: &Stmt) -> bool {
        match s {
            Stmt::Call(..) => true,
            Stmt::AssignLocal(_, e) => expr_calls(e),
            Stmt::AssignGlobal(_, _, e) => expr_calls(e),
            Stmt::StoreIndex { index, value, .. } => expr_calls(index) || expr_calls(value),
            Stmt::If { cond, then_, els } => {
                expr_calls(&cond.lhs)
                    || expr_calls(&cond.rhs)
                    || then_.iter().any(stmt_calls)
                    || els.iter().any(stmt_calls)
            }
            Stmt::While { cond, body } => {
                expr_calls(&cond.lhs) || expr_calls(&cond.rhs) || body.iter().any(stmt_calls)
            }
            Stmt::For { body, .. } => body.iter().any(stmt_calls),
            Stmt::Switch { scrutinee, cases } => {
                expr_calls(scrutinee) || cases.iter().flatten().any(stmt_calls)
            }
            Stmt::Return(Some(e)) => expr_calls(e),
            Stmt::Return(None) => false,
        }
    }
    !func.body.iter().any(stmt_calls)
}

/// Maps function name → index, for tests and tooling.
pub fn function_index(program: &Program) -> HashMap<&str, u32> {
    program.functions.iter().enumerate().map(|(i, f)| (f.name.as_str(), i as u32)).collect()
}
