//! Lowering correctness: template shapes, metadata, and — the strongest
//! check — actually executing lowered IR on the VM and comparing against
//! host-evaluated semantics.

use codense_codegen::ir::*;
use codense_codegen::lower::{lower_program_with, LowerOptions};
use codense_codegen::{build_program, spec_profiles};
use codense_ppc::{decode, Insn};
use codense_vm::{machine::Machine, run::run, LinearFetcher};

/// The synthetic `.data` base the lowering uses for globals (see lower.rs).
const GLOBAL_BASE: u32 = 0x0040_0000;

fn lower_one(func: Function, globals: u16) -> codense_obj::ObjectModule {
    let program = Program { name: "t".into(), functions: vec![func], globals };
    lower_program_with(&program, LowerOptions::default()).unwrap()
}

/// Runs function 0 of a module to completion: enters at its first
/// instruction with LR pointing at an appended `sc`, returns the machine.
fn execute(module: &codense_obj::ObjectModule, args: &[u32]) -> Machine {
    let mut code = module.code.clone();
    let halt_index = code.len();
    code.push(codense_ppc::encode(&Insn::Sc));
    let mut machine = Machine::new(0x50_0000); // covers the global area
    machine.lr = (8 * halt_index) as u32;
    for (i, &v) in args.iter().enumerate() {
        machine.gpr[3 + i] = v;
    }
    let mut fetch = LinearFetcher::new(code);
    run(&mut machine, &mut fetch, 8 * module.functions[0].start as u64, 1_000_000)
        .expect("lowered function runs to completion");
    machine
}

#[test]
fn arithmetic_lowers_to_correct_semantics() {
    // g0 = (7 + 5) * 3 - 4  == 32
    let func = Function {
        name: "f".into(),
        params: 0,
        locals: 2,
        body: vec![
            Stmt::AssignLocal(
                Local(0),
                Expr::Bin(
                    BinOp::Mul,
                    Box::new(Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Const(7)),
                        Box::new(Expr::Const(5)),
                    )),
                    Box::new(Expr::Const(3)),
                ),
            ),
            Stmt::AssignGlobal(
                Global(0),
                Width::Word,
                Expr::Bin(
                    BinOp::Sub,
                    Box::new(Expr::Local(Local(0), Width::Word)),
                    Box::new(Expr::Const(4)),
                ),
            ),
            Stmt::Return(None),
        ],
    };
    let module = lower_one(func, 4);
    let machine = execute(&module, &[]);
    assert_eq!(machine.load32(GLOBAL_BASE).unwrap(), 32);
}

#[test]
fn params_return_and_calls_work() {
    // f0(a, b) = f1(a) + b, f1(x) = x * x  => f0(6, 9) = 45
    let f0 = Function {
        name: "f0".into(),
        params: 2,
        locals: 3,
        body: vec![
            Stmt::AssignLocal(
                Local(2),
                Expr::Call(FuncRef(1), vec![Expr::Local(Local(0), Width::Word)]),
            ),
            Stmt::Return(Some(Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Local(Local(2), Width::Word)),
                Box::new(Expr::Local(Local(1), Width::Word)),
            ))),
        ],
    };
    let f1 = Function {
        name: "f1".into(),
        params: 1,
        locals: 1,
        body: vec![Stmt::Return(Some(Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Local(Local(0), Width::Word)),
            Box::new(Expr::Local(Local(0), Width::Word)),
        )))],
    };
    let program = Program { name: "t".into(), functions: vec![f0, f1], globals: 1 };
    let module = lower_program_with(&program, LowerOptions::default()).unwrap();
    let machine = execute(&module, &[6, 9]);
    assert_eq!(machine.gpr[3], 45);
}

#[test]
fn control_flow_lowers_correctly() {
    // g0 = sum of i for i in 0..10 via For; g1 = 1 if g0 > 40 else 2.
    let func = Function {
        name: "f".into(),
        params: 0,
        locals: 2,
        body: vec![
            Stmt::AssignLocal(Local(1), Expr::Const(0)),
            Stmt::For {
                var: Local(0),
                from: 0,
                to: 10,
                body: vec![Stmt::AssignLocal(
                    Local(1),
                    Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Local(Local(1), Width::Word)),
                        Box::new(Expr::Local(Local(0), Width::Word)),
                    ),
                )],
            },
            Stmt::AssignGlobal(Global(0), Width::Word, Expr::Local(Local(1), Width::Word)),
            Stmt::If {
                cond: Cond {
                    op: CmpOp::Gt,
                    unsigned: false,
                    lhs: Expr::Local(Local(1), Width::Word),
                    rhs: Expr::Const(40),
                    crf: 0,
                },
                then_: vec![Stmt::AssignGlobal(Global(1), Width::Word, Expr::Const(1))],
                els: vec![Stmt::AssignGlobal(Global(1), Width::Word, Expr::Const(2))],
            },
            Stmt::Return(None),
        ],
    };
    let module = lower_one(func, 4);
    let machine = execute(&module, &[]);
    assert_eq!(machine.load32(GLOBAL_BASE).unwrap(), 45);
    assert_eq!(machine.load32(GLOBAL_BASE + 4).unwrap(), 1);
}

#[test]
fn while_and_unary_ops() {
    // x = 1; while (x < 100) x = x * 2;  g0 = -x  => x = 128, g0 = -128.
    let func = Function {
        name: "f".into(),
        params: 0,
        locals: 1,
        body: vec![
            Stmt::AssignLocal(Local(0), Expr::Const(1)),
            Stmt::While {
                cond: Cond {
                    op: CmpOp::Lt,
                    unsigned: false,
                    lhs: Expr::Local(Local(0), Width::Word),
                    rhs: Expr::Const(100),
                    crf: 1,
                },
                body: vec![Stmt::AssignLocal(
                    Local(0),
                    Expr::Bin(
                        BinOp::Shl(1),
                        Box::new(Expr::Local(Local(0), Width::Word)),
                        Box::new(Expr::Const(0)),
                    ),
                )],
            },
            Stmt::AssignGlobal(
                Global(0),
                Width::Word,
                Expr::Un(UnOp::Neg, Box::new(Expr::Local(Local(0), Width::Word))),
            ),
            Stmt::Return(None),
        ],
    };
    let module = lower_one(func, 1);
    let machine = execute(&module, &[]);
    assert_eq!(machine.load32(GLOBAL_BASE).unwrap(), (-128i32) as u32);
}

#[test]
fn prologue_template_shape() {
    let profile = &spec_profiles()[0];
    let program = build_program(profile);
    let module = lower_program_with(&program, LowerOptions::default()).unwrap();
    // Every function starts with the frame-allocation store-with-update.
    for func in &module.functions {
        let first = decode(module.code[func.start]);
        assert!(matches!(first, Insn::Stwu { .. }), "{}: prologue starts {first:?}", func.name);
        // Epilogue ends with blr.
        let last = decode(module.code[func.end - 1]);
        assert!(matches!(last, Insn::Bclr { .. }), "{}: ends {last:?}", func.name);
    }
}

#[test]
fn standardized_prologues_are_identical() {
    let profile = &spec_profiles()[0];
    let program = build_program(profile);
    let module = lower_program_with(
        &program,
        LowerOptions { standardize_prologues: true, ..LowerOptions::default() },
    )
    .unwrap();
    // The 4-instruction core prologue (stwu/mflr/stw/stmw) is bit-identical
    // in every function — the property that makes it one dictionary entry.
    let reference: Vec<u32> = module.code[module.functions[0].start..][..4].to_vec();
    for func in &module.functions {
        assert_eq!(&module.code[func.start..func.start + 4], &reference[..], "{}", func.name);
    }
}

#[test]
fn switches_produce_consistent_jump_tables() {
    let profile = &spec_profiles()[1]; // gcc: switch-heavy
    let module = codense_codegen::generate_module(profile);
    assert!(!module.jump_tables.is_empty());
    let bbs = codense_obj::BasicBlocks::compute(&module);
    for table in &module.jump_tables {
        assert!(table.targets.len() >= 2);
        for &t in &table.targets {
            assert!(bbs.is_leader(t), "jump table target {t} must start a block");
        }
    }
}

#[test]
fn lowering_is_deterministic() {
    let profile = &spec_profiles()[3];
    let a = codense_codegen::generate_module(profile);
    let b = codense_codegen::generate_module(profile);
    assert_eq!(a.code, b.code);
}
